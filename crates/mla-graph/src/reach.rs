//! Dense reachability: per-node ancestor/descendant bitsets.
//!
//! The reference coherent-closure fixpoint (DESIGN.md §6) represents the
//! relation under construction as one predecessor [`BitSet`] per step and
//! alternates transitive propagation with the paper's condition (b). This
//! module provides the transitive-propagation half: given a graph, compute
//! for every node the set of nodes that can reach it.

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use crate::scc::tarjan;

/// For every node `v`, the set of nodes `u` with a path `u -> ... -> v`
/// of length >= 1 (so `v` itself is included only if `v` lies on a cycle).
///
/// Computed SCC-wise in reverse topological order, which is both correct on
/// cyclic graphs and avoids the quadratic blowup of naive per-node DFS on
/// dense DAGs.
pub fn predecessor_sets(g: &DiGraph) -> Vec<BitSet> {
    let n = g.node_count();
    let cond = tarjan(g);
    let mut preds: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();

    // Tarjan numbers components in reverse topological order, so iterating
    // components from the highest index downwards visits sources first.
    let rev = g.reversed();
    for comp in (0..cond.len() as u32).rev() {
        let members = &cond.members[comp as usize];
        // Union over all members: predecessors flowing in along any edge.
        let mut acc = BitSet::new(n);
        for &v in members {
            for &u in rev.successors(v) {
                acc.insert(u as usize);
                // u's own predecessors are in preds[u] already if u is in
                // an earlier (source-ward) component; if u is in this same
                // component it will be handled by the cycle fill below.
                acc.union_with(&preds[u as usize]);
            }
        }
        if members.len() > 1 || g.has_edge(members[0], members[0]) {
            // Every member of a nontrivial SCC reaches every member.
            for &v in members {
                acc.insert(v as usize);
            }
        }
        for &v in members {
            preds[v as usize] = acc.clone();
        }
    }
    preds
}

/// Nodes reachable from `start` by paths of length >= 1.
pub fn reachable_from(g: &DiGraph, start: NodeId) -> BitSet {
    let n = g.node_count();
    let mut seen = BitSet::new(n);
    let mut stack: Vec<NodeId> = g.successors(start).to_vec();
    while let Some(v) = stack.pop() {
        if seen.insert(v as usize) {
            stack.extend_from_slice(g.successors(v));
        }
    }
    seen
}

/// Whether a path `u -> ... -> v` of length >= 1 exists.
pub fn reaches(g: &DiGraph, u: NodeId, v: NodeId) -> bool {
    reachable_from(g, u).contains(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle built from repeated single-source DFS.
    fn naive_predecessor_sets(g: &DiGraph) -> Vec<BitSet> {
        let n = g.node_count();
        let mut preds: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for u in 0..n as NodeId {
            for v in reachable_from(g, u).iter() {
                preds[v].insert(u as usize);
            }
        }
        preds
    }

    #[test]
    fn path_graph() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let p = predecessor_sets(&g);
        assert_eq!(p[0].count(), 0);
        assert_eq!(p[3].iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(reaches(&g, 0, 3));
        assert!(!reaches(&g, 3, 0));
        assert!(!reaches(&g, 0, 0), "acyclic node does not reach itself");
    }

    #[test]
    fn cycle_members_reach_themselves() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let p = predecessor_sets(&g);
        assert!(p[0].contains(0));
        assert!(p[1].contains(1));
        assert!(!p[2].contains(2));
        assert_eq!(p[2].iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn self_loop_counts() {
        let g = DiGraph::from_edges(2, [(0, 0), (0, 1)]);
        let p = predecessor_sets(&g);
        assert!(p[0].contains(0));
        assert!(p[1].contains(0));
        assert!(!p[1].contains(1));
    }

    #[test]
    fn diamond() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = predecessor_sets(&g);
        assert_eq!(p[3].iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..300 {
            let n = rng.gen_range(1..25);
            let m = rng.gen_range(0..60);
            let g = DiGraph::from_edges(
                n,
                (0..m).map(|_| (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId))),
            );
            let fast = predecessor_sets(&g);
            let slow = naive_predecessor_sets(&g);
            assert_eq!(fast, slow, "trial {trial}: predecessor sets differ");
        }
    }

    #[test]
    fn empty_graph() {
        assert!(predecessor_sets(&DiGraph::new(0)).is_empty());
    }
}
