//! A minimal fixed-capacity bitset over `u64` blocks.
//!
//! The coherent-closure fixpoint keeps one predecessor set per execution
//! step; for executions of a few thousand steps that is a few megabytes of
//! densely packed bits, and the fixpoint's inner loop is bulk `OR`s. A
//! hand-rolled bitset keeps the crate dependency-free and lets us expose
//! exactly the bulk operations the closure needs ([`BitSet::union_with`],
//! [`BitSet::union_with_returning_changed`]).

const BLOCK_BITS: usize = 64;

/// A fixed-capacity set of `usize` values in `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for values in `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(BLOCK_BITS)],
            len,
        }
    }

    /// The capacity (one more than the largest storable value).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`, returning whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        let block = &mut self.blocks[i / BLOCK_BITS];
        let mask = 1u64 << (i % BLOCK_BITS);
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Removes `i`, returning whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        let block = &mut self.blocks[i / BLOCK_BITS];
        let mask = 1u64 << (i % BLOCK_BITS);
        let present = *block & mask != 0;
        *block &= !mask;
        present
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.blocks[i / BLOCK_BITS] & (1u64 << (i % BLOCK_BITS)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `self |= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self |= other`, returning whether `self` changed.
    pub fn union_with_returning_changed(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Whether `self` and `other` share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Grows the capacity to at least `new_len`, preserving contents.
    /// Shrinking is a no-op (existing bits stay addressable).
    pub fn grow(&mut self, new_len: usize) {
        if new_len > self.len {
            self.blocks.resize(new_len.div_ceil(BLOCK_BITS), 0);
            self.len = new_len;
        }
    }

    /// Iterates over set elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl Default for BitSet {
    /// An empty set with zero capacity (grow before inserting).
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects elements into a set sized to fit the largest one.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(len);
        for i in items {
            set.insert(i);
        }
        set
    }
}

/// Iterator over the elements of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * BLOCK_BITS + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(!s.contains(3));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.insert(199));
        assert_eq!(s.count(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_and_change_detection() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        a.insert(1);
        b.insert(1);
        b.insert(127);
        assert!(a.union_with_returning_changed(&b));
        assert!(!a.union_with_returning_changed(&b));
        assert!(a.contains(127));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(300);
        for &i in &[299, 0, 64, 65, 128] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 64, 65, 128, 299]);
    }

    #[test]
    fn subset_and_intersects() {
        let a: BitSet = [1usize, 5, 9].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.insert(5);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.intersects(&b));
        b.clear();
        assert!(!a.intersects(&b));
        assert!(b.is_subset(&a));
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let s: BitSet = [7usize, 2].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert!(s.contains(7));
        assert!(s.contains(2));
        assert!(!s.contains(3));
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut s: BitSet = [0usize, 1, 2].into_iter().collect();
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }
}
