//! Transaction-pair summaries: the deduplicated transaction-level edge
//! sets that closure-engine shards exchange and that window eviction
//! forward-reaches over.
//!
//! A shard's maintained frontier induces a transaction-level relation
//! ("some step of `u` precedes some step of `v`"). For eviction and for
//! cross-shard aggregation only this summary matters, not the per-step
//! frontier rows — so it is the unit shards hand across their boundary:
//! each shard projects its frontier down to a [`PairSummary`], summaries
//! [`merge`](PairSummary::merge) into the global transaction relation,
//! and reachability over the merged summary equals reachability over the
//! union of the per-shard closures (shards partition the entities, so
//! every closure pair lives inside exactly one shard).

use std::collections::HashMap;

/// A deduplicated set of directed transaction pairs `u -> v` over stable
/// `u32` transaction ids, with forward reachability.
#[derive(Clone, Debug, Default)]
pub struct PairSummary {
    /// Successor lists in insertion order, deduplicated.
    adj: HashMap<u32, Vec<u32>>,
    edges: usize,
}

impl PairSummary {
    /// An empty summary.
    pub fn new() -> Self {
        PairSummary::default()
    }

    /// Records the pair `u -> v` (self-pairs and duplicates are ignored).
    pub fn add(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let succ = self.adj.entry(u).or_default();
        if !succ.contains(&v) {
            succ.push(v);
            self.edges += 1;
        }
    }

    /// Folds another summary in (the cross-shard exchange step).
    pub fn merge(&mut self, other: &PairSummary) {
        for (&u, succ) in &other.adj {
            for &v in succ {
                self.add(u, v);
            }
        }
    }

    /// Successors of `u` recorded so far.
    pub fn successors(&self, u: u32) -> &[u32] {
        self.adj.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct pairs recorded.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Everything forward-reachable from `sources` (sources included) —
    /// the live-window "keep" set when sources are the uncommitted
    /// transactions.
    pub fn reachable_from(&self, sources: impl IntoIterator<Item = u32>) -> Vec<u32> {
        let mut keep: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        for s in sources {
            if !keep.contains(&s) {
                keep.push(s);
                stack.push(s);
            }
        }
        while let Some(u) = stack.pop() {
            for &v in self.successors(u) {
                if !keep.contains(&v) {
                    keep.push(v);
                    stack.push(v);
                }
            }
        }
        keep.sort_unstable();
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut s = PairSummary::new();
        s.add(1, 2);
        s.add(1, 2);
        s.add(3, 3);
        assert_eq!(s.edge_count(), 1);
        assert_eq!(s.successors(1), &[2]);
        assert!(s.successors(3).is_empty());
    }

    #[test]
    fn merge_unions_edges() {
        let mut a = PairSummary::new();
        a.add(1, 2);
        let mut b = PairSummary::new();
        b.add(2, 3);
        b.add(1, 2);
        a.merge(&b);
        assert_eq!(a.edge_count(), 2);
        assert_eq!(a.reachable_from([1]), vec![1, 2, 3]);
    }

    #[test]
    fn reachability_follows_direction() {
        let mut s = PairSummary::new();
        s.add(1, 2);
        s.add(2, 4);
        s.add(5, 1);
        assert_eq!(s.reachable_from([1]), vec![1, 2, 4]);
        assert_eq!(s.reachable_from([4]), vec![4]);
        assert_eq!(s.reachable_from([5, 4]), vec![1, 2, 4, 5]);
    }

    #[test]
    fn disjoint_summaries_stay_disjoint_after_merge() {
        // The sharding picture: two shards over disjoint transactions.
        let mut a = PairSummary::new();
        a.add(0, 2);
        let mut b = PairSummary::new();
        b.add(1, 3);
        a.merge(&b);
        assert_eq!(a.reachable_from([0]), vec![0, 2]);
        assert_eq!(a.reachable_from([1]), vec![1, 3]);
    }
}
