//! Strongly connected components (iterative Tarjan) and condensation.
//!
//! Stage `i` of the constructive proof of the paper's Lemma 1 builds a
//! graph `G` over *segments*, totally orders its strongly connected
//! components "so that G contains no edges from any segment in I_n to any
//! segment in I_m, m < n", and then inserts all cross-component pairs. The
//! [`Condensation`] returned here delivers the components already in a
//! reverse-topological order (a property of Tarjan's algorithm), which the
//! stage then reverses to obtain exactly that total order.

use crate::digraph::{DiGraph, NodeId};

/// The strongly-connected-component decomposition of a graph.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `comp_of[v]` is the component index of node `v`.
    pub comp_of: Vec<u32>,
    /// `members[c]` lists the nodes of component `c`.
    pub members: Vec<Vec<NodeId>>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether every component is a singleton, i.e. the graph is a DAG
    /// (ignoring self-loops, which Tarjan places in singleton components).
    pub fn is_acyclic_ignoring_self_loops(&self) -> bool {
        self.members.iter().all(|m| m.len() == 1)
    }

    /// The component DAG: an edge `c -> d` for every original edge between
    /// distinct components, deduplicated.
    pub fn component_dag(&self, g: &DiGraph) -> DiGraph {
        let mut dag = DiGraph::new(self.len());
        for (u, v) in g.edges() {
            let (cu, cv) = (self.comp_of[u as usize], self.comp_of[v as usize]);
            if cu != cv {
                dag.add_edge_unique(cu, cv);
            }
        }
        dag
    }

    /// Component indices in a topological order of the component DAG
    /// (sources first). Tarjan emits components in reverse topological
    /// order, so this is simply the reversed index sequence.
    pub fn topo_component_order(&self) -> Vec<u32> {
        (0..self.len() as u32).rev().collect()
    }
}

/// Computes the strongly connected components of `g` with an iterative
/// Tarjan's algorithm.
///
/// Components are numbered in reverse topological order of the component
/// DAG: if there is an edge from component `a` to component `b != a`, then
/// `a > b`.
pub fn tarjan(g: &DiGraph) -> Condensation {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![UNVISITED; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frame: (node, next successor position to examine).
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let succs = g.successors(v);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let comp_id = members.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp_id;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(comp);
                }
            }
        }
    }

    Condensation { comp_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp_sets(c: &Condensation) -> Vec<Vec<NodeId>> {
        let mut sets: Vec<Vec<NodeId>> = c
            .members
            .iter()
            .map(|m| {
                let mut m = m.clone();
                m.sort_unstable();
                m
            })
            .collect();
        sets.sort();
        sets
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let c = tarjan(&g);
        assert_eq!(c.len(), 1);
        assert_eq!(comp_sets(&c), vec![vec![0, 1, 2]]);
        assert!(!c.is_acyclic_ignoring_self_loops());
    }

    #[test]
    fn dag_gives_singletons_in_reverse_topo_order() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)]);
        let c = tarjan(&g);
        assert_eq!(c.len(), 4);
        assert!(c.is_acyclic_ignoring_self_loops());
        // Reverse topological numbering: every edge goes to a smaller comp.
        for (u, v) in g.edges() {
            assert!(
                c.comp_of[u as usize] > c.comp_of[v as usize],
                "edge ({u},{v}) violates reverse-topo numbering"
            );
        }
    }

    #[test]
    fn two_cycles_with_bridge() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let c = tarjan(&g);
        assert_eq!(comp_sets(&c), vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
        // {0,1} reaches {2,3,4} reaches {5}: numbering must strictly drop.
        let c01 = c.comp_of[0];
        let c234 = c.comp_of[2];
        let c5 = c.comp_of[5];
        assert!(c01 > c234 && c234 > c5);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let g = DiGraph::from_edges(2, [(0, 0), (0, 1)]);
        let c = tarjan(&g);
        assert_eq!(c.len(), 2);
        // is_acyclic_ignoring_self_loops cannot see the self-loop.
        assert!(c.is_acyclic_ignoring_self_loops());
    }

    #[test]
    fn empty_graph() {
        let c = tarjan(&DiGraph::new(0));
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn disconnected_nodes_each_own_component() {
        let c = tarjan(&DiGraph::new(5));
        assert_eq!(c.len(), 5);
        assert!(c.is_acyclic_ignoring_self_loops());
    }

    #[test]
    fn component_dag_deduplicates_edges() {
        // Two nodes in comp A both point into comp B: one DAG edge.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (0, 2), (1, 2), (2, 3), (3, 2)]);
        let c = tarjan(&g);
        let dag = c.component_dag(&g);
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(dag.node_count(), 2);
    }

    #[test]
    fn topo_component_order_respects_edges() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (3, 1), (2, 4)]);
        let c = tarjan(&g);
        let order = c.topo_component_order();
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (u, v) in g.edges() {
            let (cu, cv) = (c.comp_of[u as usize], c.comp_of[v as usize]);
            if cu != cv {
                assert!(pos[&cu] < pos[&cv]);
            }
        }
    }

    #[test]
    fn large_path_graph_does_not_overflow_stack() {
        // 200k-node path: recursion would overflow; the iterative version
        // must not.
        let n = 200_000;
        let g = DiGraph::from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)));
        let c = tarjan(&g);
        assert_eq!(c.len(), n);
    }
}
