//! A dense `u32 -> u32` map with a sentinel, for hot paths that would
//! otherwise hash.
//!
//! The closure engine's decision loop looks up "column of transaction"
//! and "rows touching entity" once per worklist row. Both key spaces are
//! dense by construction (`TxnId`/`EntityId` are arena-style indices), so
//! a flat vector with a sentinel beats a `HashMap` on every axis that
//! matters there: no hashing, no probing, and the lookup inlines to an
//! indexed load.

/// Sentinel meaning "absent".
const ABSENT: u32 = u32::MAX;

/// A map from dense `u32` keys to `u32` values (`u32::MAX` is reserved
/// as the absent sentinel and cannot be stored).
#[derive(Clone, Debug, Default)]
pub struct DenseMap {
    slots: Vec<u32>,
}

impl DenseMap {
    /// An empty map.
    pub fn new() -> Self {
        DenseMap { slots: Vec::new() }
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u32) -> Option<u32> {
        match self.slots.get(key as usize) {
            Some(&v) if v != ABSENT => Some(v),
            _ => None,
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key -> val`, returning the previous value if any.
    ///
    /// # Panics
    /// Panics if `val` is the reserved sentinel `u32::MAX`.
    pub fn insert(&mut self, key: u32, val: u32) -> Option<u32> {
        assert_ne!(val, ABSENT, "u32::MAX is the absent sentinel");
        let idx = key as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, ABSENT);
        }
        let old = std::mem::replace(&mut self.slots[idx], val);
        (old != ABSENT).then_some(old)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u32) -> Option<u32> {
        let idx = key as usize;
        if idx >= self.slots.len() {
            return None;
        }
        let old = std::mem::replace(&mut self.slots[idx], ABSENT);
        (old != ABSENT).then_some(old)
    }

    /// Removes every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = ABSENT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = DenseMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, 7), None);
        assert_eq!(m.insert(3, 9), Some(7));
        assert_eq!(m.get(3), Some(9));
        assert!(m.contains(3));
        assert_eq!(m.remove(3), Some(9));
        assert_eq!(m.remove(3), None);
        assert!(!m.contains(3));
        assert_eq!(m.get(1000), None);
        assert_eq!(m.remove(1000), None);
    }

    #[test]
    fn clear_keeps_capacity_drops_entries() {
        let mut m = DenseMap::new();
        m.insert(0, 1);
        m.insert(5, 2);
        m.clear();
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(5), None);
        m.insert(5, 3);
        assert_eq!(m.get(5), Some(3));
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_value_rejected() {
        DenseMap::new().insert(0, u32::MAX);
    }
}
