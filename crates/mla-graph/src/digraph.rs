//! A compact adjacency-list directed graph over dense node indices.

/// Index of a node in a [`DiGraph`]. Kept at 32 bits: dependency graphs in
/// this reproduction are indexed by execution step, and executions beyond
/// `u32::MAX` steps are far outside simulation scale.
pub type NodeId = u32;

/// A directed graph with nodes `0..n` and adjacency lists.
///
/// ```
/// use mla_graph::{DiGraph, topo_sort, find_cycle};
///
/// let dag = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
/// assert!(topo_sort(&dag).is_ok());
///
/// let cyclic = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// let cycle = find_cycle(&cyclic).unwrap();
/// assert_eq!(cycle.len(), 3);
/// ```
///
/// Parallel edges are permitted by [`DiGraph::add_edge`] and collapsed by
/// [`DiGraph::add_edge_unique`]; self-loops are permitted (and are reported
/// as cycles of length one by the cycle finders, matching the convention
/// that a dependency relation containing `(x, x)` with `x != x`'s reflexive
/// closure is not a partial order).
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    succ: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list, sizing the node set to fit.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges (counting duplicates inserted via [`Self::add_edge`]).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a fresh isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.succ.push(Vec::new());
        (self.succ.len() - 1) as NodeId
    }

    /// Adds the edge `u -> v`. Duplicates are stored as-is.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!((v as usize) < self.succ.len(), "node {v} out of range");
        self.succ[u as usize].push(v);
        self.edge_count += 1;
    }

    /// Adds `u -> v` unless an identical edge already exists.
    /// Returns whether the edge was inserted.
    pub fn add_edge_unique(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!((v as usize) < self.succ.len(), "node {v} out of range");
        if self.succ[u as usize].contains(&v) {
            return false;
        }
        self.succ[u as usize].push(v);
        self.edge_count += 1;
        true
    }

    /// Whether the edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succ.get(u as usize).is_some_and(|s| s.contains(&v))
    }

    /// Successors of `u`.
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        &self.succ[u as usize]
    }

    /// Iterates over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as NodeId, v)))
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.succ.len()];
        for vs in &self.succ {
            for &v in vs {
                deg[v as usize] += 1;
            }
        }
        deg
    }

    /// The reverse graph (every edge flipped).
    pub fn reversed(&self) -> DiGraph {
        let mut rev = DiGraph::new(self.node_count());
        for (u, v) in self.edges() {
            rev.add_edge(v, u);
        }
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.successors(1), &[2]);
    }

    #[test]
    fn unique_edges_deduplicate() {
        let mut g = DiGraph::new(2);
        assert!(g.add_edge_unique(0, 1));
        assert!(!g.add_edge_unique(0, 1));
        assert_eq!(g.edge_count(), 1);
        g.add_edge(0, 1); // non-unique insert keeps the duplicate
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn add_node_grows() {
        let mut g = DiGraph::new(1);
        let n = g.add_node();
        assert_eq!(n, 1);
        g.add_edge(0, n);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn from_edges_and_iteration() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3), (0, 3)]);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn in_degrees_and_reverse() {
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2), (2, 0)]);
        assert_eq!(g.in_degrees(), vec![1, 0, 2]);
        let r = g.reversed();
        assert!(r.has_edge(2, 0));
        assert!(r.has_edge(2, 1));
        assert!(r.has_edge(0, 2));
        assert_eq!(r.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_to_missing_node_panics() {
        DiGraph::new(1).add_edge(0, 5);
    }
}
