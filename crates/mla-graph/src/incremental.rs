//! Online cycle detection via incremental topological ordering
//! (Pearce–Kelly algorithm).
//!
//! The cycle-detection schedulers of §6 of the paper "generate explicitly
//! the edges of the coherent closure of `<=_e` and check for cycles" as the
//! execution unfolds. Rebuilding a static graph per step would be
//! quadratic; [`IncrementalTopo`] instead maintains a topological order
//! under edge insertions, reporting a concrete [`Cycle`] the moment an
//! insertion would create one (the edge is then *not* inserted, so the
//! structure stays acyclic and the scheduler can roll back a victim and
//! retry).
//!
//! Node removal (needed when a transaction commits and its steps are
//! garbage-collected, or aborts and its steps are undone) only deletes
//! edges and therefore never invalidates the maintained order.

use crate::digraph::NodeId;
use crate::topo::Cycle;

/// An acyclic directed graph maintained under edge insertion with an
/// always-valid topological order.
///
/// ```
/// use mla_graph::IncrementalTopo;
///
/// let mut g = IncrementalTopo::new(3);
/// assert_eq!(g.add_edge(0, 1), Ok(true));
/// assert_eq!(g.add_edge(1, 2), Ok(true));
/// // Closing the cycle is rejected and the graph is left unchanged.
/// assert!(g.add_edge(2, 0).is_err());
/// assert!(g.position(0) < g.position(2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalTopo {
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    /// `ord[v]` is the position of `v` in the maintained topological order:
    /// for every edge `(u, v)`, `ord[u] < ord[v]`.
    ord: Vec<u64>,
    edge_count: usize,
}

impl IncrementalTopo {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        IncrementalTopo {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            ord: (0..n as u64).collect(),
            edge_count: 0,
        }
    }

    /// Number of nodes (including detached ones).
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a fresh node, placed last in the topological order.
    pub fn add_node(&mut self) -> NodeId {
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        // New nodes take a position beyond all existing ones. Positions are
        // not compacted; u64 gives ample headroom.
        let max = self.ord.iter().copied().max().map_or(0, |m| m + 1);
        self.ord.push(max);
        (self.succ.len() - 1) as NodeId
    }

    /// Position of `v` in the maintained topological order.
    pub fn position(&self, v: NodeId) -> u64 {
        self.ord[v as usize]
    }

    /// Whether the edge `(u, v)` is present.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succ[u as usize].contains(&v)
    }

    /// Successors of `u`.
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        &self.succ[u as usize]
    }

    /// Predecessors of `u`.
    pub fn predecessors(&self, u: NodeId) -> &[NodeId] {
        &self.pred[u as usize]
    }

    /// Inserts the edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if inserted, `Ok(false)` if it already existed,
    /// and `Err(cycle)` — leaving the graph unchanged — if insertion would
    /// create a cycle. A self-edge is reported as a one-node cycle.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, Cycle> {
        if u == v {
            return Err(Cycle(vec![u]));
        }
        if self.contains_edge(u, v) {
            return Ok(false);
        }
        let (lb, ub) = (self.ord[v as usize], self.ord[u as usize]);
        if lb > ub {
            // Already consistent with the maintained order.
            self.insert_raw(u, v);
            return Ok(true);
        }
        // Affected region: positions in [lb, ub]. Forward-search from v
        // within the region; touching u means a v ->* u path exists and the
        // new edge would close a cycle.
        let delta_f = self.forward_region(v, u, ub)?;
        let delta_b = self.backward_region(u, lb);
        self.reorder(delta_b, delta_f);
        self.insert_raw(u, v);
        Ok(true)
    }

    /// Removes the edge `(u, v)` if present; returns whether it existed.
    /// Edge removal never invalidates the maintained order.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let before = self.succ[u as usize].len();
        self.succ[u as usize].retain(|&w| w != v);
        if self.succ[u as usize].len() == before {
            return false;
        }
        self.pred[v as usize].retain(|&w| w != u);
        self.edge_count -= 1;
        true
    }

    /// Detaches `v` from the graph: removes all incident edges. The node id
    /// remains valid (and isolated) so dense external indexing stays intact.
    pub fn detach_node(&mut self, v: NodeId) {
        let outs = std::mem::take(&mut self.succ[v as usize]);
        for w in outs {
            self.pred[w as usize].retain(|&x| x != v);
            self.edge_count -= 1;
        }
        let ins = std::mem::take(&mut self.pred[v as usize]);
        for w in ins {
            self.succ[w as usize].retain(|&x| x != v);
            self.edge_count -= 1;
        }
    }

    /// Grows the graph until it has at least `n` nodes, appending fresh
    /// isolated nodes at the end of the order.
    pub fn ensure_nodes(&mut self, n: usize) {
        while self.node_count() < n {
            self.add_node();
        }
    }

    /// Clears every edge and resets the order to the identity, keeping
    /// node capacity. Used when a closure engine rebuilds from scratch
    /// (abort/eviction) without reallocating.
    pub fn reset(&mut self) {
        for s in &mut self.succ {
            s.clear();
        }
        for p in &mut self.pred {
            p.clear();
        }
        for (i, o) in self.ord.iter_mut().enumerate() {
            *o = i as u64;
        }
        self.edge_count = 0;
    }

    /// Whether a path `u -> ... -> v` of length >= 1 exists.
    /// (Linear scan; intended for assertions and tests, not hot paths.)
    pub fn has_path(&self, u: NodeId, v: NodeId) -> bool {
        let mut stack = self.succ[u as usize].clone();
        let mut seen = vec![false; self.node_count()];
        while let Some(w) = stack.pop() {
            if w == v {
                return true;
            }
            if !std::mem::replace(&mut seen[w as usize], true) {
                stack.extend_from_slice(&self.succ[w as usize]);
            }
        }
        false
    }

    fn insert_raw(&mut self, u: NodeId, v: NodeId) {
        self.succ[u as usize].push(v);
        self.pred[v as usize].push(u);
        self.edge_count += 1;
    }

    /// DFS forward from `v` restricted to positions `<= ub`. Errors with a
    /// concrete cycle if `target` (= the edge's source `u`) is reached.
    fn forward_region(&self, v: NodeId, target: NodeId, ub: u64) -> Result<Vec<NodeId>, Cycle> {
        let mut parent: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut region = Vec::new();
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![v];
        seen[v as usize] = true;
        while let Some(w) = stack.pop() {
            region.push(w);
            for &x in &self.succ[w as usize] {
                if x == target {
                    // Witness: v -> ... -> w -> target over existing edges;
                    // the wrap-around pair (target, v) is the rejected edge.
                    let mut path = vec![w];
                    let mut cur = w;
                    while let Some(p) = parent[cur as usize] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse(); // v, ..., w
                    path.push(target);
                    return Err(Cycle(path));
                }
                if self.ord[x as usize] <= ub && !seen[x as usize] {
                    seen[x as usize] = true;
                    parent[x as usize] = Some(w);
                    stack.push(x);
                }
            }
        }
        Ok(region)
    }

    /// DFS backward from `u` restricted to positions `>= lb`.
    fn backward_region(&self, u: NodeId, lb: u64) -> Vec<NodeId> {
        let mut region = Vec::new();
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![u];
        seen[u as usize] = true;
        while let Some(w) = stack.pop() {
            region.push(w);
            for &x in &self.pred[w as usize] {
                if self.ord[x as usize] >= lb && !seen[x as usize] {
                    seen[x as usize] = true;
                    stack.push(x);
                }
            }
        }
        region
    }

    /// Pearce–Kelly reordering: the backward region (ending at `u`) must
    /// precede the forward region (starting at `v`). Pool the positions of
    /// both regions and redistribute them: backward nodes first, forward
    /// nodes second, each sub-list keeping its existing relative order.
    fn reorder(&mut self, mut delta_b: Vec<NodeId>, mut delta_f: Vec<NodeId>) {
        delta_b.sort_unstable_by_key(|&w| self.ord[w as usize]);
        delta_f.sort_unstable_by_key(|&w| self.ord[w as usize]);
        let mut pool: Vec<u64> = delta_b
            .iter()
            .chain(delta_f.iter())
            .map(|&w| self.ord[w as usize])
            .collect();
        pool.sort_unstable();
        for (slot, &w) in pool.iter().zip(delta_b.iter().chain(delta_f.iter())) {
            self.ord[w as usize] = *slot;
        }
    }

    /// Verifies the maintained order against every edge. Test/debug helper.
    pub fn check_invariants(&self) -> bool {
        self.succ
            .iter()
            .enumerate()
            .all(|(u, vs)| vs.iter().all(|&v| self.ord[u] < self.ord[v as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_insertions_are_cheap() {
        let mut t = IncrementalTopo::new(4);
        assert_eq!(t.add_edge(0, 1), Ok(true));
        assert_eq!(t.add_edge(1, 2), Ok(true));
        assert_eq!(t.add_edge(2, 3), Ok(true));
        assert_eq!(t.add_edge(0, 1), Ok(false));
        assert!(t.check_invariants());
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    fn against_order_insertion_reorders() {
        let mut t = IncrementalTopo::new(3);
        t.add_edge(1, 2).unwrap();
        t.add_edge(2, 0).unwrap(); // 0 initially precedes 1 and 2
        assert!(t.check_invariants());
        assert!(t.position(1) < t.position(2));
        assert!(t.position(2) < t.position(0));
    }

    #[test]
    fn cycle_rejected_and_graph_unchanged() {
        let mut t = IncrementalTopo::new(3);
        t.add_edge(0, 1).unwrap();
        t.add_edge(1, 2).unwrap();
        let cycle = t.add_edge(2, 0).unwrap_err();
        // Witness runs over existing edges from the edge's head (0) to its
        // tail (2); the rejected edge closes the loop.
        assert_eq!(cycle.nodes().first(), Some(&0));
        assert_eq!(cycle.nodes().last(), Some(&2));
        assert!(!t.contains_edge(2, 0));
        assert_eq!(t.edge_count(), 2);
        assert!(t.check_invariants());
        // The structure remains usable.
        assert_eq!(t.add_edge(0, 2), Ok(true));
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = IncrementalTopo::new(1);
        let c = t.add_edge(0, 0).unwrap_err();
        assert_eq!(c.nodes(), &[0]);
    }

    #[test]
    fn cycle_witness_is_a_real_path() {
        let mut t = IncrementalTopo::new(5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            t.add_edge(u, v).unwrap();
        }
        let c = t.add_edge(4, 0).unwrap_err();
        let nodes = c.nodes();
        // Every consecutive pair inside the witness is an existing edge;
        // the wrap-around pair is the rejected edge.
        for pair in nodes.windows(2) {
            assert!(t.contains_edge(pair[0], pair[1]));
        }
        assert_eq!(nodes[nodes.len() - 1], 4);
        assert_eq!(nodes[0], 0);
    }

    #[test]
    fn detach_allows_previously_cyclic_edge() {
        let mut t = IncrementalTopo::new(3);
        t.add_edge(0, 1).unwrap();
        t.add_edge(1, 2).unwrap();
        assert!(t.add_edge(2, 0).is_err());
        t.detach_node(1); // breaks the 0 ->* 2 path
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.add_edge(2, 0), Ok(true));
        assert!(t.check_invariants());
    }

    #[test]
    fn remove_edge_semantics() {
        let mut t = IncrementalTopo::new(2);
        t.add_edge(0, 1).unwrap();
        assert!(t.remove_edge(0, 1));
        assert!(!t.remove_edge(0, 1));
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.add_edge(1, 0), Ok(true));
    }

    #[test]
    fn add_node_extends_order() {
        let mut t = IncrementalTopo::new(1);
        let n = t.add_node();
        assert_eq!(n, 1);
        t.add_edge(1, 0).unwrap();
        assert!(t.check_invariants());
    }

    #[test]
    fn removing_a_finished_nodes_edges_reopens_the_order() {
        // Scheduler pattern: node 1 is a committed/aborted transaction's
        // step. Dropping its incident edges one by one (not detach) must
        // let a previously cyclic edge in.
        let mut t = IncrementalTopo::new(4);
        t.add_edge(0, 1).unwrap();
        t.add_edge(1, 2).unwrap();
        t.add_edge(1, 3).unwrap();
        assert!(t.add_edge(2, 0).is_err());
        assert!(t.remove_edge(0, 1));
        assert!(t.remove_edge(1, 2));
        // 0 ->* 2 is broken now; the former cycle edge is acceptable.
        assert_eq!(t.add_edge(2, 0), Ok(true));
        assert!(t.contains_edge(1, 3), "unrelated edge must survive");
        assert_eq!(t.edge_count(), 2);
        assert!(t.check_invariants());
    }

    #[test]
    fn detach_hub_node_then_reinsert_former_cycles() {
        // A hub with both fan-in and fan-out; detaching it must remove
        // every incident edge and unlock all cycles through it.
        let mut t = IncrementalTopo::new(5);
        for (u, v) in [(0, 2), (1, 2), (2, 3), (2, 4)] {
            t.add_edge(u, v).unwrap();
        }
        assert!(t.add_edge(3, 0).is_err());
        assert!(t.add_edge(4, 1).is_err());
        t.detach_node(2);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.add_edge(3, 0), Ok(true));
        assert_eq!(t.add_edge(4, 1), Ok(true));
        // The node id stays valid and can rejoin later.
        assert_eq!(t.add_edge(0, 2), Ok(true));
        assert!(t.check_invariants());
    }

    #[test]
    fn reset_restores_a_fresh_graph() {
        let mut t = IncrementalTopo::new(3);
        t.add_edge(2, 1).unwrap();
        t.add_edge(1, 0).unwrap();
        t.reset();
        assert_eq!(t.edge_count(), 0);
        assert!((0..3).all(|v| t.position(v) == v as u64));
        // Edges that used to be forced into a reordering are fresh again.
        assert_eq!(t.add_edge(0, 1), Ok(true));
        assert_eq!(t.add_edge(1, 2), Ok(true));
        assert!(t.add_edge(2, 0).is_err());
        assert!(t.check_invariants());
    }

    #[test]
    fn ensure_nodes_grows_monotonically() {
        let mut t = IncrementalTopo::new(1);
        t.ensure_nodes(4);
        assert_eq!(t.node_count(), 4);
        t.ensure_nodes(2); // never shrinks
        assert_eq!(t.node_count(), 4);
        t.add_edge(3, 0).unwrap();
        assert!(t.check_invariants());
    }

    #[test]
    fn randomized_deletions_against_static_checker() {
        use crate::digraph::DiGraph;
        use crate::topo::is_acyclic;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        for trial in 0..60 {
            let n = rng.gen_range(2..12);
            let mut t = IncrementalTopo::new(n);
            let mut live: Vec<(NodeId, NodeId)> = Vec::new();
            for _ in 0..rng.gen_range(0..60) {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if rng.gen_bool(0.3) && !live.is_empty() {
                    let i = rng.gen_range(0..live.len());
                    let (a, b) = live.swap_remove(i);
                    assert!(t.remove_edge(a, b), "trial {trial}: edge vanished");
                } else {
                    let mut candidate = live.clone();
                    candidate.push((u, v));
                    let static_ok = is_acyclic(&DiGraph::from_edges(n, candidate.iter().copied()));
                    match t.add_edge(u, v) {
                        Ok(true) => {
                            assert!(static_ok, "trial {trial}: accepted cyclic ({u},{v})");
                            live.push((u, v));
                        }
                        Ok(false) => {}
                        Err(_) => {
                            assert!(!static_ok, "trial {trial}: rejected acyclic ({u},{v})");
                        }
                    }
                }
                assert!(t.check_invariants(), "trial {trial}: invariant broken");
            }
        }
    }

    #[test]
    fn randomized_against_static_checker() {
        use crate::digraph::DiGraph;
        use crate::topo::is_acyclic;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(13);
        for trial in 0..100 {
            let n = rng.gen_range(2..15);
            let mut t = IncrementalTopo::new(n);
            let mut accepted: Vec<(NodeId, NodeId)> = Vec::new();
            for _ in 0..rng.gen_range(0..40) {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                // Oracle: would accepted + (u,v) still be acyclic?
                let mut candidate = accepted.clone();
                candidate.push((u, v));
                let static_ok = is_acyclic(&DiGraph::from_edges(n, candidate.iter().copied()));
                match t.add_edge(u, v) {
                    Ok(_) => {
                        assert!(static_ok, "trial {trial}: accepted a cyclic edge ({u},{v})");
                        accepted.push((u, v));
                    }
                    Err(_) => {
                        assert!(
                            !static_ok,
                            "trial {trial}: rejected an acyclic edge ({u},{v})"
                        );
                    }
                }
                assert!(
                    t.check_invariants(),
                    "trial {trial}: order invariant broken"
                );
            }
        }
    }

    #[test]
    fn dense_random_insertions_keep_invariant() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 60;
        let mut t = IncrementalTopo::new(n);
        let mut ok = 0;
        for _ in 0..2000 {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if t.add_edge(u, v).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0);
        assert!(t.check_invariants());
    }
}
