//! Criterion benches: whole-simulation cost per control (the scheduler
//! overhead axis of E4), plus the A2 window-eviction ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mla_bench::runner::{run_cell, ControlKind};
use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

fn bench_controls(c: &mut Criterion) {
    let b = generate(BankingConfig {
        transfers: 16,
        bank_audits: 1,
        credit_audits: 1,
        arrival_spacing: 2,
        ..BankingConfig::default()
    });
    let policy = VictimPolicy::FewestSteps;
    let mut group = c.benchmark_group("scheduler_cost");
    group.sample_size(10);
    for kind in [
        ControlKind::Serial,
        ControlKind::TwoPl,
        ControlKind::Timestamp,
        ControlKind::Sgt(policy),
        ControlKind::MlaDetect(policy),
        ControlKind::MlaDetectNoEvict(policy),
        ControlKind::MlaPrevent(policy),
    ] {
        group.bench_with_input(
            BenchmarkId::new("banking16", kind.label()),
            &kind,
            |bch, &kind| {
                bch.iter(|| {
                    std::hint::black_box(
                        run_cell(&b.workload, kind, 0xBE).outcome.metrics.committed,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_controls);
criterion_main!(benches);
