//! Criterion benches: whole-simulation cost per control (the scheduler
//! overhead axis of E4), the A2 window-eviction ablation, and the A4
//! incremental-vs-full-rebuild closure-maintenance comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mla_bench::runner::{run_cell, ControlKind};
use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

fn bench_controls(c: &mut Criterion) {
    let b = generate(BankingConfig {
        transfers: 16,
        bank_audits: 1,
        credit_audits: 1,
        arrival_spacing: 2,
        ..BankingConfig::default()
    });
    let policy = VictimPolicy::FewestSteps;
    let mut group = c.benchmark_group("scheduler_cost");
    group.sample_size(10);
    for kind in [
        ControlKind::Serial,
        ControlKind::TwoPl,
        ControlKind::Timestamp,
        ControlKind::Sgt(policy),
        ControlKind::MlaDetect(policy),
        ControlKind::MlaDetectNoEvict(policy),
        ControlKind::MlaDetectFullRebuild(policy),
        ControlKind::MlaPrevent(policy),
    ] {
        group.bench_with_input(
            BenchmarkId::new("banking16", kind.label()),
            &kind,
            |bch, &kind| {
                bch.iter(|| {
                    std::hint::black_box(
                        run_cell(&b.workload, kind, 0xBE).outcome.metrics.committed,
                    )
                })
            },
        );
    }
    group.finish();
}

/// A4 side by side: per-step delta cost vs per-step full-rebuild cost
/// over the same decision procedure, at live-window sizes where the
/// quadratic rebuild bill dominates.
fn bench_closure_maintenance(c: &mut Criterion) {
    let policy = VictimPolicy::FewestSteps;
    let mut group = c.benchmark_group("closure_maintenance");
    group.sample_size(10);
    for transfers in [64usize, 96] {
        let b = generate(BankingConfig {
            transfers,
            bank_audits: 1,
            credit_audits: 1,
            arrival_spacing: 2, // dense injection: large live windows
            ..BankingConfig::default()
        });
        for kind in [
            ControlKind::MlaDetect(policy),
            ControlKind::MlaDetectFullRebuild(policy),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("banking{transfers}"), kind.label()),
                &kind,
                |bch, &kind| {
                    bch.iter(|| {
                        std::hint::black_box(
                            run_cell(&b.workload, kind, 0xA4).outcome.metrics.committed,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_controls, bench_closure_maintenance);
criterion_main!(benches);
