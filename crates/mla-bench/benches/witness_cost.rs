//! Criterion bench for E10: Lemma 1 witness construction (stage-wise SCC
//! condensation) on correctable executions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mla_bench::experiments::random_execution;
use mla_core::closure::CoherentClosure;
use mla_core::extend::extend_to_total_order;
use mla_core::spec::ExecContext;
use mla_workload::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness_cost");
    for &(txns, steps) in &[(8usize, 48usize), (16, 96), (32, 192), (64, 384)] {
        let s = generate(SyntheticConfig {
            txns,
            k: 4,
            fanout: vec![2, 2],
            densities: vec![0.3, 0.8],
            len_min: steps / txns,
            len_max: steps / txns,
            entities: txns * 4,
            zipf_theta: 0.0,
            seed: 0xE10,
            ..SyntheticConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(10);
        let exec = random_execution(&s.workload, &mut rng, steps);
        let nest = s.workload.nest.clone();
        let spec = s.workload.spec();
        let ctx = ExecContext::new(&exec, &nest, &spec).unwrap();
        let closure = CoherentClosure::compute(&ctx);
        if !closure.is_partial_order() {
            continue; // only correctable inputs have witnesses
        }
        group.bench_with_input(BenchmarkId::new("extend", exec.len()), &exec, |b, _| {
            b.iter(|| std::hint::black_box(extend_to_total_order(&ctx, &closure).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_witness);
criterion_main!(benches);
