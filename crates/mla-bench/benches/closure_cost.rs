//! Criterion benches for E3/A1: the coherent-closure acyclicity test
//! (frontier form), the literal reference closure, and the classical
//! conflict-graph serializability check, over growing executions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mla_bench::experiments::random_execution;
use mla_core::closure::{coherent_closure_exact, CoherentClosure};
use mla_core::serializability::is_serializable;
use mla_core::spec::ExecContext;
use mla_workload::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_cost");
    for &(txns, steps) in &[(8usize, 64usize), (16, 128), (32, 256), (64, 512)] {
        let s = generate(SyntheticConfig {
            txns,
            k: 3,
            fanout: vec![2],
            densities: vec![0.5],
            len_min: steps / txns,
            len_max: steps / txns,
            entities: txns * 2,
            seed: 0xBE,
            ..SyntheticConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let exec = random_execution(&s.workload, &mut rng, steps);
        let nest = s.workload.nest.clone();
        let spec = s.workload.spec();

        group.bench_with_input(
            BenchmarkId::new("frontier", exec.len()),
            &exec,
            |b, exec| {
                let ctx = ExecContext::new(exec, &nest, &spec).unwrap();
                b.iter(|| {
                    let c = CoherentClosure::compute(&ctx);
                    std::hint::black_box(c.is_partial_order())
                })
            },
        );
        if exec.len() <= 128 {
            group.bench_with_input(BenchmarkId::new("exact", exec.len()), &exec, |b, exec| {
                let ctx = ExecContext::new(exec, &nest, &spec).unwrap();
                b.iter(|| std::hint::black_box(coherent_closure_exact(&ctx).len()))
            });
        }
        group.bench_with_input(BenchmarkId::new("sgt", exec.len()), &exec, |b, exec| {
            b.iter(|| std::hint::black_box(is_serializable(exec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
