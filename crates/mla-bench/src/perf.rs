//! The PR6 perf trajectory: a fixed-seed bench runner whose output is
//! committed as `BENCH_PR6.json`, so later PRs can diff a machine-readable
//! baseline instead of eyeballing experiment prose.
//!
//! Two tables:
//!
//! * **scheduler replay** — the simulated-clock suites every prior PR
//!   reported on (banking, CAD, partitioned at 1/4/8 shards, certified
//!   replay), each cell verified against the offline checker by
//!   [`run_cell`];
//! * **mla-serve** — the live service: real worker threads on MVCC
//!   storage, wall-clock throughput and tail latency.
//!
//! Wall-clock columns move with the host; the committed/aborts/defers
//! columns are deterministic (seeded simulation, certified fast-path
//! drain) and are the regression tripwires. Each wall measurement is
//! best-of-N (minimum over [`REPEATS`] replay runs, per-metric floor
//! over [`SERVE_DRAINS`] live drains) so the committed artifact
//! reflects the code, not scheduler jitter — `bench_compare` diffs
//! these artifacts at a 10% threshold, which single-shot millisecond
//! timings would trip spuriously.

use std::time::Duration;

use mla_cc::VictimPolicy;
use mla_serve::{partitioned_load, run as serve_run, SchedKind, ServeConfig};
use mla_workload::{banking, cad, partitioned};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// The fixed seed every replay cell uses.
pub const SEED: u64 = 0x6B;

/// Wall-clock repeats per cell; the reported time is the minimum.
pub const REPEATS: usize = 9;

/// Full live-service drains per bench; each wall/latency column
/// reports its floor across them.
pub const SERVE_DRAINS: usize = 7;

fn replay_row(table: &mut Table, row: &str, wl: &mla_workload::Workload, kind: ControlKind) {
    let key = |m: &mla_sim::Metrics| (m.committed, m.aborts, m.defers, m.makespan);
    let mut cell = run_cell(wl, kind, SEED);
    for _ in 1..REPEATS {
        let again = run_cell(wl, kind, SEED);
        assert_eq!(
            key(&again.outcome.metrics),
            key(&cell.outcome.metrics),
            "seeded replay must be deterministic across repeats"
        );
        if again.wall_seconds < cell.wall_seconds {
            cell = again;
        }
    }
    let m = &cell.outcome.metrics;
    table.row(vec![
        row.to_string(),
        kind.label().to_string(),
        f2(cell.wall_seconds * 1e3),
        m.committed.to_string(),
        m.aborts.to_string(),
        m.defers.to_string(),
        f2(m.throughput_per_kilotick()),
    ]);
}

/// The simulated-clock replay table.
pub fn replay_table(quick: bool, pr: &str) -> Table {
    let mut table = Table::new(
        format!("BENCH {pr}: scheduler replay (simulated clock, seed 0x6B)"),
        &[
            "workload", "control", "wall-ms", "commits", "aborts", "defers", "thru/kt",
        ],
    );

    let bank = if quick {
        banking::BankingConfig {
            transfers: 16,
            ..Default::default()
        }
    } else {
        banking::BankingConfig::default()
    };
    let bank = banking::generate(bank).workload;
    replay_row(
        &mut table,
        "banking",
        &bank,
        ControlKind::MlaDetect(VictimPolicy::FewestSteps),
    );
    replay_row(
        &mut table,
        "banking",
        &bank,
        ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
    );

    let cad = cad::generate(cad::CadConfig::default()).workload;
    replay_row(
        &mut table,
        "cad",
        &cad,
        ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
    );

    let part = if quick {
        partitioned::PartitionedConfig {
            partitions: 4,
            txns_per_partition: 12,
            scanner_len: 12,
            arrival_spacing: 2,
        }
    } else {
        partitioned::PartitionedConfig::default()
    };
    let part = partitioned::generate(part).workload;
    for shards in [1usize, 4, 8] {
        replay_row(
            &mut table,
            &format!("partitioned/{shards}"),
            &part,
            ControlKind::MlaDetectSharded(VictimPolicy::FewestSteps, shards),
        );
    }
    replay_row(
        &mut table,
        "partitioned",
        &part,
        ControlKind::MlaDetectCertified(VictimPolicy::FewestSteps),
    );
    replay_row(
        &mut table,
        "partitioned",
        &part,
        ControlKind::MlaPreventCertified(VictimPolicy::FewestSteps),
    );
    table
}

/// The live-service table: certified partitioned drain on worker
/// threads, wall-clock throughput with tail latency.
pub fn serve_table(quick: bool, pr: &str) -> Table {
    let mut table = Table::new(
        format!("BENCH {pr}: mla-serve (live threads, MVCC storage, wall clock)"),
        &[
            "sessions", "txns", "sched", "commits", "drain-ms", "txn/s", "p50-us", "p95-us",
            "p99-us",
        ],
    );
    let (sessions, per_session) = if quick { (64, 25) } else { (128, 800) };
    let load = partitioned_load(sessions, per_session);
    let config = ServeConfig {
        sched: SchedKind::Prevent,
        workers: 4,
        certified: true,
        deadline: Duration::from_secs(300),
        ..Default::default()
    };
    // Live threads are noisier than seeded replay, and the latency
    // tails are noisier still: a single drain's p99 moves by tens of
    // percent run to run on a small host. Record the per-metric floor
    // over [`SERVE_DRAINS`] full drains (each drain's counters are
    // still asserted individually), so the committed artifact reflects
    // the code's achievable envelope rather than one run's scheduler
    // luck.
    let mut reports = Vec::with_capacity(SERVE_DRAINS);
    for _ in 0..SERVE_DRAINS {
        let report = serve_run(&load, &config);
        assert!(
            report.clean,
            "bench drain must complete before the deadline"
        );
        assert_eq!(report.snapshot_violations, 0, "snapshot probes must hold");
        assert_eq!(
            report.committed,
            (sessions * per_session) as u64,
            "every submitted transaction must commit"
        );
        reports.push(report);
    }
    let wall = reports.iter().map(|r| r.wall).min().unwrap();
    let throughput = reports.iter().map(|r| r.throughput).fold(0.0, f64::max);
    let p50 = reports.iter().map(|r| r.p50_us).min().unwrap();
    let p95 = reports.iter().map(|r| r.p95_us).min().unwrap();
    let p99 = reports.iter().map(|r| r.p99_us).min().unwrap();
    table.row(vec![
        sessions.to_string(),
        per_session.to_string(),
        reports[0].sched.clone(),
        reports[0].committed.to_string(),
        f2(wall.as_secs_f64() * 1e3),
        f2(throughput),
        p50.to_string(),
        p95.to_string(),
        p99.to_string(),
    ]);
    table
}

/// Runs the whole bench suite with the PR6 title stamp.
pub fn run(quick: bool) -> Vec<Table> {
    run_labeled(quick, "PR6")
}

/// Runs the whole bench suite, stamping `pr` into the table titles.
/// Row keys and headers are stable across PRs — `bench_compare`
/// matches tables by header, so artifacts from different PRs diff
/// cleanly whatever their titles say.
pub fn run_labeled(quick: bool, pr: &str) -> Vec<Table> {
    vec![replay_table(quick, pr), serve_table(quick, pr)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_both_tables() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(
            tables[0].len(),
            8,
            "replay rows: 2 banking + cad + 3 shard + 2 cert"
        );
        assert_eq!(tables[1].len(), 1, "one serve throughput row");
        // The serve row committed everything it was offered.
        assert_eq!(tables[1].cell(0, 3), "1600");
    }
}
