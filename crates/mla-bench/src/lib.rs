//! The experiment harness: one module per experiment in DESIGN.md.
//!
//! The paper (Lynch 1982) is theory-only — it has no tables or figures.
//! DESIGN.md therefore defines an evaluation suite E1–E10 (plus ablations
//! A1–A4) that answers the questions the paper *poses*:
//!
//! * how much larger than the serial set is `C(π, 𝔅)` (E1, E2, E8);
//! * what does the Theorem 2 check cost relative to the serializability
//!   check (E3, E10, A1);
//! * can multilevel-atomicity schedulers beat serializable ones (E4,
//!   E6, E7);
//! * do they abort less, as §6 conjectures (E5, A3);
//! * how bad are the rollback cascades §6 warns about (E9, A2).
//!
//! Each experiment has a library function returning a printable
//! [`Table`], a thin binary under `src/bin/`, and (where microbenchmarks
//! make sense) a Criterion bench under `benches/`. `cargo run --release
//! --bin all_experiments` regenerates everything EXPERIMENTS.md reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod experiments;
pub mod perf;
pub mod runner;
pub mod table;

pub use runner::{run_cell, CellResult, ControlKind};
pub use table::Table;
