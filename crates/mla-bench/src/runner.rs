//! The shared simulation runner: control selection, safety checking,
//! multi-seed aggregation.

use mla_cc::{
    oracle, MlaDetect, MlaPrevent, SerialControl, SgtControl, TimestampOrdering, TwoPhaseLocking,
    VictimPolicy,
};
use mla_sim::{run, SimConfig, SimOutcome};
use mla_workload::Workload;

/// Which concurrency control to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlKind {
    /// One transaction at a time.
    Serial,
    /// Strict two-phase locking with wound-wait.
    TwoPl,
    /// Basic timestamp ordering.
    Timestamp,
    /// Serialization-graph testing.
    Sgt(VictimPolicy),
    /// Multilevel-atomicity cycle detection.
    MlaDetect(VictimPolicy),
    /// Multilevel-atomicity cycle detection over a closure engine
    /// sharded across the given number of entity partitions (A5).
    MlaDetectSharded(VictimPolicy, usize),
    /// Multilevel-atomicity cycle detection over a sharded closure
    /// engine running on a worker-thread pool: `(policy, shards,
    /// workers)` (A6).
    MlaDetectParallel(VictimPolicy, usize, usize),
    /// Multilevel-atomicity cycle detection without window eviction (A2).
    MlaDetectNoEvict(VictimPolicy),
    /// Multilevel-atomicity cycle detection with a forced full closure
    /// rebuild before every decision (A4: the pre-incremental cost
    /// model, same decisions).
    MlaDetectFullRebuild(VictimPolicy),
    /// Multilevel-atomicity cycle prevention.
    MlaPrevent(VictimPolicy),
    /// Cycle detection armed with an `mla-lint` static safety
    /// certificate (A7). Panics if the workload does not certify.
    MlaDetectCertified(VictimPolicy),
    /// Cycle prevention armed with an `mla-lint` static safety
    /// certificate (A7). Panics if the workload does not certify.
    MlaPreventCertified(VictimPolicy),
}

impl ControlKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ControlKind::Serial => "serial",
            ControlKind::TwoPl => "strict-2pl",
            ControlKind::Timestamp => "timestamp",
            ControlKind::Sgt(_) => "sgt",
            ControlKind::MlaDetect(_) => "mla-detect",
            ControlKind::MlaDetectSharded(_, _) => "mla-detect/sharded",
            ControlKind::MlaDetectParallel(_, _, _) => "mla-detect/parallel",
            ControlKind::MlaDetectNoEvict(_) => "mla-detect/noevict",
            ControlKind::MlaDetectFullRebuild(_) => "mla-detect/rebuild",
            ControlKind::MlaPrevent(_) => "mla-prevent",
            ControlKind::MlaDetectCertified(_) => "mla-detect/certified",
            ControlKind::MlaPreventCertified(_) => "mla-prevent/certified",
        }
    }

    /// Whether the control guarantees serializability (vs. the weaker
    /// multilevel atomicity).
    pub fn is_serializable(self) -> bool {
        matches!(
            self,
            ControlKind::Serial | ControlKind::TwoPl | ControlKind::Timestamp | ControlKind::Sgt(_)
        )
    }
}

/// One simulation cell: outcome plus verified safety.
pub struct CellResult {
    /// The raw simulation outcome.
    pub outcome: SimOutcome,
    /// The control that produced it.
    pub kind: ControlKind,
    /// Prevention-rule fallback count (MlaPrevent only).
    pub prevention_misses: u64,
    /// Wall-clock seconds the simulation took (scheduler overhead
    /// included).
    pub wall_seconds: f64,
}

/// Runs `kind` on `wl` with the given seed, then *verifies* the history
/// against the appropriate offline checker. Panics on any safety
/// violation — experiments must never report unsound numbers.
pub fn run_cell(wl: &Workload, kind: ControlKind, seed: u64) -> CellResult {
    let config = SimConfig::seeded(seed);
    // The certificate is an offline input to the scheduler, like the
    // workload itself: build it before the timer starts so certified
    // cells measure scheduler work, not the static analysis pass.
    let cert = match kind {
        ControlKind::MlaDetectCertified(_) | ControlKind::MlaPreventCertified(_) => Some(
            mla_lint::certify_workload(wl)
                .cert
                .expect("workload must certify for the certified control"),
        ),
        _ => None,
    };
    let started = std::time::Instant::now();
    let (outcome, prevention_misses) = match kind {
        ControlKind::Serial => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut SerialControl::default(),
            ),
            0,
        ),
        ControlKind::TwoPl => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut TwoPhaseLocking::new(),
            ),
            0,
        ),
        ControlKind::Timestamp => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut TimestampOrdering::new(),
            ),
            0,
        ),
        ControlKind::Sgt(policy) => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut SgtControl::new(wl.txn_count(), policy),
            ),
            0,
        ),
        ControlKind::MlaDetect(policy) => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut MlaDetect::new(wl.spec(), policy),
            ),
            0,
        ),
        ControlKind::MlaDetectSharded(policy, shards) => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut MlaDetect::new(wl.spec(), policy).with_shards(shards),
            ),
            0,
        ),
        ControlKind::MlaDetectParallel(policy, shards, workers) => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut MlaDetect::new(wl.spec(), policy)
                    .with_shards(shards)
                    .with_parallelism(workers),
            ),
            0,
        ),
        ControlKind::MlaDetectNoEvict(policy) => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut MlaDetect::new(wl.spec(), policy).without_eviction(),
            ),
            0,
        ),
        ControlKind::MlaDetectFullRebuild(policy) => (
            run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut MlaDetect::new(wl.spec(), policy).with_full_rebuild(),
            ),
            0,
        ),
        ControlKind::MlaPrevent(policy) => {
            let mut c = MlaPrevent::new(wl.txn_count(), wl.spec(), policy);
            let out = run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut c,
            );
            (out, c.prevention_misses)
        }
        ControlKind::MlaDetectCertified(policy) => {
            let cert = cert.expect("certificate built before the timer");
            (
                run(
                    wl.nest.clone(),
                    wl.instances(),
                    wl.initial.iter().copied(),
                    &wl.arrivals,
                    &config,
                    &mut MlaDetect::new(wl.spec(), policy).with_static_cert(cert),
                ),
                0,
            )
        }
        ControlKind::MlaPreventCertified(policy) => {
            let cert = cert.expect("certificate built before the timer");
            let mut c = MlaPrevent::new(wl.txn_count(), wl.spec(), policy).with_static_cert(cert);
            let out = run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &config,
                &mut c,
            );
            (out, c.prevention_misses)
        }
    };
    let wall_seconds = started.elapsed().as_secs_f64();

    assert!(
        !outcome.metrics.timed_out,
        "{} on {} (seed {seed}): timed out",
        kind.label(),
        wl.name
    );
    if kind.is_serializable() {
        assert!(
            oracle::is_serializable_outcome(&outcome),
            "{} on {} (seed {seed}): history not serializable",
            kind.label(),
            wl.name
        );
    } else {
        assert!(
            oracle::is_correctable_outcome(&outcome, &wl.nest, &wl.spec()),
            "{} on {} (seed {seed}): history violates Theorem 2",
            kind.label(),
            wl.name
        );
    }
    CellResult {
        outcome,
        kind,
        prevention_misses,
        wall_seconds,
    }
}

/// Aggregated metrics over seeds.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Mean throughput (commits / kilotick).
    pub throughput: f64,
    /// Mean of mean commit latencies.
    pub latency: f64,
    /// Total aborts across seeds.
    pub aborts: u64,
    /// Total defers across seeds.
    pub defers: u64,
    /// Mean wasted-work fraction.
    pub wasted: f64,
    /// Total commit rollbacks.
    pub commit_rollbacks: u64,
    /// Largest cascade across seeds.
    pub max_cascade: usize,
    /// Mean wall seconds per run.
    pub wall_seconds: f64,
    /// Total closure rebuilds across seeds (engine-backed controls only).
    pub closure_rebuilds: u64,
    /// Total closure edges inserted across seeds.
    pub closure_edges: u64,
    /// Mean closure rows processed per decision.
    pub rows_per_decision: f64,
    /// Seeds aggregated.
    pub runs: usize,
}

/// Runs `kind` on `wl` for each seed — in parallel, one scoped thread
/// per seed (cells are fully independent: every thread builds its own
/// instances and control) — and averages.
pub fn run_seeds(wl: &Workload, kind: ControlKind, seeds: &[u64]) -> Aggregate {
    let cells: std::sync::Mutex<Vec<CellResult>> =
        std::sync::Mutex::new(Vec::with_capacity(seeds.len()));
    std::thread::scope(|scope| {
        for &seed in seeds {
            let cells = &cells;
            scope.spawn(move || {
                let cell = run_cell(wl, kind, seed);
                cells.lock().expect("seed worker poisoned").push(cell);
            });
        }
    });
    let mut agg = Aggregate::default();
    for cell in cells.into_inner().expect("seed worker panicked") {
        let m = &cell.outcome.metrics;
        agg.throughput += m.throughput_per_kilotick();
        agg.latency += m.mean_latency();
        agg.aborts += m.aborts;
        agg.defers += m.defers;
        agg.wasted += m.wasted_work();
        agg.commit_rollbacks += m.commit_rollbacks;
        agg.max_cascade = agg.max_cascade.max(m.max_cascade());
        agg.wall_seconds += cell.wall_seconds;
        agg.closure_rebuilds += m.decision_cost.rebuilds;
        agg.closure_edges += m.decision_cost.edges_inserted;
        agg.rows_per_decision += m.rows_per_decision();
        agg.runs += 1;
    }
    let n = agg.runs.max(1) as f64;
    agg.throughput /= n;
    agg.latency /= n;
    agg.wasted /= n;
    agg.wall_seconds /= n;
    agg.rows_per_decision /= n;
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_workload::banking::{generate, BankingConfig};

    #[test]
    fn run_cell_verifies_each_control() {
        let b = generate(BankingConfig {
            transfers: 6,
            bank_audits: 1,
            credit_audits: 1,
            ..BankingConfig::default()
        });
        for kind in [
            ControlKind::Serial,
            ControlKind::TwoPl,
            ControlKind::Timestamp,
            ControlKind::Sgt(VictimPolicy::FewestSteps),
            ControlKind::MlaDetect(VictimPolicy::FewestSteps),
            ControlKind::MlaDetectNoEvict(VictimPolicy::FewestSteps),
            ControlKind::MlaDetectFullRebuild(VictimPolicy::FewestSteps),
            ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
        ] {
            let cell = run_cell(&b.workload, kind, 3);
            assert_eq!(
                cell.outcome.metrics.committed as usize,
                b.workload.txn_count(),
                "{}",
                kind.label()
            );
        }
    }

    #[test]
    fn aggregation_averages() {
        let b = generate(BankingConfig {
            transfers: 4,
            bank_audits: 0,
            credit_audits: 0,
            ..BankingConfig::default()
        });
        let agg = run_seeds(&b.workload, ControlKind::TwoPl, &[1, 2, 3]);
        assert_eq!(agg.runs, 3);
        assert!(agg.throughput > 0.0);
    }
}
