//! Plain-text table rendering for experiment reports.

/// A simple left-aligned-first-column table with right-aligned numbers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Serializes the table as a JSON object (hand-rolled; the harness
    /// has no JSON dependency).
    pub fn to_json(&self) -> String {
        let header: Vec<String> = self
            .header
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"title\":\"{}\",\"header\":[{}],\"rows\":[{}]}}",
            esc(&self.title),
            header.join(","),
            rows.join(",")
        )
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// JSON string escaping for [`Table::to_json`].
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), "22222");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_round_trippable_shape() {
        let mut t = Table::new("quo\"te", &["a", "b"]);
        t.row(vec!["x\\y".into(), "1".into()]);
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("quo\\\"te"));
        assert!(j.contains("x\\\\y"));
        assert!(j.contains("\"rows\":[[\"x\\\\y\",\"1\"]]"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct(0.125), "12.5%");
    }
}
