//! E9 — Rollback cascades and the commit-point hazard (§6).
//!
//! Multilevel atomicity publishes partial results at breakpoints, so a
//! rollback can chain through transactions that consumed them — even
//! already-"committed" ones. This experiment drives MLA-detect into
//! abort-heavy regimes (tight entity pools, hot Zipf head, *mixed*
//! breakpoint structure so cycles actually occur) and reports the
//! cascade-size distribution and commit rollbacks.

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

use crate::experiments::seeds;
use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Runs E9.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E9: rollback cascades under mla-detect (banking, audits racing transfers)",
        &[
            "accounts",
            "aborts",
            "cascades",
            "mean-size",
            "max-size",
            "commit-rollbacks",
            "wasted",
        ],
    );
    let pools: &[(usize, usize)] = if quick {
        &[(1, 2), (2, 3)]
    } else {
        &[(1, 2), (1, 3), (2, 3), (2, 4), (4, 4)]
    };
    for &(families, accounts_per_family) in pools {
        let mut aborts = 0u64;
        let mut cascades: Vec<usize> = Vec::new();
        let mut commit_rollbacks = 0u64;
        let mut wasted = 0.0;
        let runs = seeds(quick);
        for &seed in &runs {
            let b = generate(BankingConfig {
                families,
                accounts_per_family,
                transfers: if quick { 10 } else { 20 },
                bank_audits: 2, // audits racing transfers force cycles
                credit_audits: 1,
                arrival_spacing: 1,
                zipf_theta: 1.0,
                seed,
                ..BankingConfig::default()
            });
            let cell = run_cell(
                &b.workload,
                ControlKind::MlaDetect(VictimPolicy::Requester),
                seed,
            );
            let m = &cell.outcome.metrics;
            aborts += m.aborts;
            cascades.extend(m.cascade_sizes.iter().copied());
            commit_rollbacks += m.commit_rollbacks;
            wasted += m.wasted_work();
        }
        let mean_size = if cascades.is_empty() {
            0.0
        } else {
            cascades.iter().sum::<usize>() as f64 / cascades.len() as f64
        };
        table.row(vec![
            (families * accounts_per_family).to_string(),
            aborts.to_string(),
            cascades.len().to_string(),
            f2(mean_size),
            cascades.iter().max().copied().unwrap_or(0).to_string(),
            commit_rollbacks.to_string(),
            f2(wasted / runs.len() as f64 * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_observes_cascades_under_pressure() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        // The tightest pool must show at least some rollback activity.
        let aborts: u64 = t.cell(0, 1).parse().unwrap();
        assert!(aborts > 0, "tight pool should force aborts");
    }
}
