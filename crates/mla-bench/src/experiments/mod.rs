//! Experiment implementations E1–E12 and A3. Each returns a [`Table`];
//! the `quick` flag shrinks sweeps for CI/tests.

pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod a6;
pub mod a7;
pub mod a8;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use mla_model::{Execution, TxnId};
use mla_workload::Workload;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::table::Table;

/// Drives a workload's system under a uniformly random interleaving
/// (one random live transaction per step) until every transaction
/// finishes or `max_steps` is reached. Produces a genuine, value-correct
/// execution.
pub fn random_execution(wl: &Workload, rng: &mut SmallRng, max_steps: usize) -> Execution {
    let sys = wl.system();
    let mut schedule: Vec<TxnId> = Vec::new();
    let mut finished = vec![false; wl.txn_count()];
    let mut exec = Execution::empty();
    while schedule.len() < max_steps {
        let live: Vec<u32> = (0..wl.txn_count() as u32)
            .filter(|&t| !finished[t as usize])
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.gen_range(0..live.len())];
        schedule.push(TxnId(t));
        match sys.run_schedule(&schedule) {
            Ok(e) => exec = e,
            Err(_) => {
                schedule.pop();
                finished[t as usize] = true;
            }
        }
    }
    exec
}

/// The seed set for a sweep.
pub fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    }
}

/// Every experiment, rendered in order. The `all_experiments` binary and
/// EXPERIMENTS.md regeneration use this.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e1::run(quick),
        e2::run(quick),
        e3::run(quick),
        e4::run(quick),
        e5::run(quick),
        e6::run(quick),
        e7::run(quick),
        e8::run(quick),
        e9::run(quick),
        e10::run(quick),
        e11::run(quick),
        e12::run(quick),
        e13::run(quick),
        a4::run(quick),
        a5::run(quick),
        a6::run(quick),
        a7::run(quick),
        a8::run(quick),
        a2::run(quick),
        a3::run(quick),
    ]
}
