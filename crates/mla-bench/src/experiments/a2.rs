//! A2 — window-eviction ablation for the online closure checks.
//!
//! The MLA controls recompute the coherent closure per decision over a
//! *window* of the journal; committed transactions are evicted once their
//! commit-time cohort has fully committed (sound per the lift argument in
//! `mla-cc::window`). Disabling eviction makes every check pay for the
//! entire history. This table measures the scheduler's wall-clock cost
//! both ways as the run grows; simulated-time metrics are identical by
//! construction (eviction never changes decisions, only their cost).

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Runs A2.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A2: window eviction ablation (mla-detect wall-clock ms per run)",
        &[
            "transfers",
            "evicting",
            "no-evict",
            "slowdown",
            "same-history",
        ],
    );
    let loads: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 96] };
    let policy = VictimPolicy::FewestSteps;
    for &transfers in loads {
        // Staggered arrivals create a steady state in which early
        // transactions' commit cohorts complete and eviction can actually
        // fire; dense arrivals would keep every cohort overlapping and
        // mask the effect.
        let b = generate(BankingConfig {
            transfers,
            bank_audits: 1,
            credit_audits: 1,
            arrival_spacing: 40,
            ..BankingConfig::default()
        });
        let with = run_cell(&b.workload, ControlKind::MlaDetect(policy), 0xA2);
        let without = run_cell(&b.workload, ControlKind::MlaDetectNoEvict(policy), 0xA2);
        // Eviction is a pure cost optimization: the decisions, and hence
        // the produced history, must be identical.
        let same = with.outcome.execution == without.outcome.execution;
        table.row(vec![
            transfers.to_string(),
            f2(with.wall_seconds * 1e3),
            f2(without.wall_seconds * 1e3),
            f2(if with.wall_seconds > 0.0 {
                without.wall_seconds / with.wall_seconds
            } else {
                0.0
            }),
            if same { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(same, "eviction changed the produced history");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_histories_identical() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 4), "yes");
        }
    }
}
