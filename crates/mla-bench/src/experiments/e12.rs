//! E12 (extension) — message-latency sensitivity.
//!
//! The migrating-transaction model (§6, after \[RSL\]) is distributed:
//! each step costs a network hop. Rising latency stretches every
//! transaction's lifetime, which widens conflict windows — the regime
//! where serializable controls stall or abort and multilevel atomicity's
//! extra interleavings should matter most. This sweep measures the
//! MLA-prevent : strict-2PL throughput ratio as base latency grows.

use mla_cc::VictimPolicy;
use mla_cc::{MlaPrevent, TwoPhaseLocking};
use mla_sim::run as sim_run;
use mla_sim::SimConfig;
use mla_workload::banking::{generate, BankingConfig};

use crate::table::{f2, Table};

/// Runs E12.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E12 (extension): throughput vs message latency, 2PL vs mla-prevent",
        &[
            "latency",
            "2pl thru/kt",
            "prevent thru/kt",
            "ratio",
            "2pl aborts",
            "prevent aborts",
        ],
    );
    let latencies: &[u64] = if quick { &[5, 25] } else { &[1, 5, 10, 25, 50] };
    for &latency in latencies {
        let b = generate(BankingConfig {
            transfers: if quick { 12 } else { 24 },
            bank_audits: 1,
            credit_audits: 1,
            arrival_spacing: 2,
            ..BankingConfig::default()
        });
        let wl = &b.workload;
        let config = SimConfig {
            latency_base: latency,
            latency_jitter: latency / 3,
            ..SimConfig::seeded(0xE12)
        };
        let out_2pl = sim_run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut TwoPhaseLocking::new(),
        );
        let mut prevent = MlaPrevent::new(wl.txn_count(), wl.spec(), VictimPolicy::FewestSteps);
        let out_mla = sim_run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut prevent,
        );
        assert!(!out_2pl.metrics.timed_out && !out_mla.metrics.timed_out);
        let t_2pl = out_2pl.metrics.throughput_per_kilotick();
        let t_mla = out_mla.metrics.throughput_per_kilotick();
        table.row(vec![
            latency.to_string(),
            f2(t_2pl),
            f2(t_mla),
            f2(if t_2pl > 0.0 { t_mla / t_2pl } else { 0.0 }),
            out_2pl.metrics.aborts.to_string(),
            out_mla.metrics.aborts.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_produces_positive_ratios() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        for r in 0..t.len() {
            let ratio: f64 = t.cell(r, 3).parse().unwrap();
            assert!(ratio > 0.0);
        }
    }
}
