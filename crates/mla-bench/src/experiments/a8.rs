//! A8 — the per-universe certification lattice on mixed-degree
//! workloads.
//!
//! A7 measured the certified fast path where it was born: a workload
//! whose *every* universe certifies. The `mixed` family is the opposite
//! regime and the lattice's reason to exist — one universe per
//! isolation degree, so the old all-or-nothing pass returned no
//! certificate at all and `certified_skips` was pinned at zero. The
//! per-universe lattice certifies the Free universe while condemning
//! Atomic and Classmates, and A8 measures what that partial certificate
//! buys.
//!
//! Each scheduler pair runs the same mixed workload with and without
//! the partial lattice. `mla-detect/cert` must reproduce the
//! uncertified history byte for byte while earning skips in *exactly*
//! the certified universes (condemned universes must report zero); the
//! `skip-rate` column is fast-path grants per performed step.
//! `mla-prevent/cert` is sound (every run is re-checked against
//! Theorem 2 by the cell runner) but not necessarily history-identical:
//! certified grants waive breakpoint waits the uncertified preventer
//! would serve, so `same-history` is *reported*, not asserted.
//!
//! The trailing `banking` row is the negative control carried over from
//! A7: all of banking's universes sit on mixed cycles, the lattice
//! condemns every one of them, and no certificate is issued — the
//! lattice refuses exactly where the global pass refused.

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate as generate_banking, BankingConfig};
use mla_workload::mixed::{generate, MixedConfig};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Runs A8.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A8: partial-lattice fast path on the mixed workload",
        &[
            "row",
            "lattice",
            "wall-ms",
            "speedup",
            "cert-skips",
            "skip-rate",
            "re-arms",
            "same-history",
        ],
    );
    let config = if quick {
        MixedConfig {
            universes: 3,
            txns_per_universe: 4,
            arrival_spacing: 2,
        }
    } else {
        MixedConfig {
            universes: 3,
            txns_per_universe: 24,
            arrival_spacing: 2,
        }
    };
    let wl = generate(config).workload;
    let cert = mla_lint::certify_workload(&wl)
        .cert
        .expect("the mixed workload must partially certify");
    assert!(
        !cert.fully_certified(),
        "mixed must keep its condemned universes — A8 measures the partial regime"
    );
    let lattice = format!(
        "{}/{}",
        cert.certified_universes().len(),
        cert.universe_count()
    );

    let policy = VictimPolicy::FewestSteps;
    let seed = 0xA8;
    let detect = run_cell(&wl, ControlKind::MlaDetect(policy), seed);
    let detect_cert = run_cell(&wl, ControlKind::MlaDetectCertified(policy), seed);
    assert_eq!(
        detect_cert.outcome.execution, detect.outcome.execution,
        "partially certified detection must replicate the uncertified history"
    );
    let cm = &detect_cert.outcome.metrics;
    assert_eq!(cm.committed, detect.outcome.metrics.committed);
    assert!(cm.certified_skips > 0, "the partial fast path never fired");
    let per = &cm.certified_skips_per_universe;
    assert_eq!(per.iter().sum::<u64>(), cm.certified_skips);
    for u in 0..cert.universe_count() as u32 {
        if cert.is_certified(u) {
            assert!(
                per[u as usize] > 0,
                "certified universe {u} earned no skips"
            );
        } else {
            assert_eq!(per[u as usize], 0, "condemned universe {u} skipped");
        }
    }

    let prevent = run_cell(&wl, ControlKind::MlaPrevent(policy), seed);
    let prevent_cert = run_cell(&wl, ControlKind::MlaPreventCertified(policy), seed);
    let qm = &prevent_cert.outcome.metrics;
    assert_eq!(qm.committed, prevent.outcome.metrics.committed);
    assert!(qm.certified_skips > 0);
    let prevent_same = prevent_cert.outcome.execution == prevent.outcome.execution;

    for (label, cell, base, same) in [
        ("sim/detect", &detect, None, "-".to_string()),
        (
            "sim/detect+cert",
            &detect_cert,
            Some(&detect),
            "yes".to_string(),
        ),
        ("sim/prevent", &prevent, None, "-".to_string()),
        (
            "sim/prevent+cert",
            &prevent_cert,
            Some(&prevent),
            if prevent_same { "yes" } else { "no" }.to_string(),
        ),
    ] {
        let m = &cell.outcome.metrics;
        let speedup = match base {
            Some(b) if cell.wall_seconds > 0.0 => f2(b.wall_seconds / cell.wall_seconds),
            _ => "-".to_string(),
        };
        let rate = if m.steps_performed > 0 {
            f2(m.certified_skips as f64 / m.steps_performed as f64)
        } else {
            "-".to_string()
        };
        table.row(vec![
            label.to_string(),
            if base.is_some() {
                lattice.clone()
            } else {
                "-".to_string()
            },
            f2(cell.wall_seconds * 1e3),
            speedup,
            m.certified_skips.to_string(),
            rate,
            m.cert_re_arms.to_string(),
            same,
        ]);
    }

    // Negative control: every banking universe is condemned, so the
    // lattice collapses to the old global denial.
    let banking = generate_banking(if quick {
        BankingConfig {
            transfers: 8,
            ..BankingConfig::default()
        }
    } else {
        BankingConfig::default()
    });
    let denial = mla_lint::certify_workload(&banking.workload);
    assert!(denial.cert.is_none(), "banking must stay uncertifiable");
    let denied_lattice = denial
        .lattice
        .expect("banking programs have known footprints");
    assert!(!denied_lattice.any_certified());
    table.row(vec![
        "banking".to_string(),
        format!("0/{}", denied_lattice.universe_count()),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a8_partial_lattice_skips_only_certified_universes() {
        let t = run(true);
        // 4 simulator rows + the banking denial.
        assert_eq!(t.len(), 5);
        // The mixed lattice is partial: some but not all universes.
        assert_eq!(
            t.cell(1, 1),
            "1/3",
            "degree cycle gives exactly one Free universe"
        );
        // Certified detection: history-identical with nonzero skips.
        assert_eq!(t.cell(1, 7), "yes");
        assert_ne!(t.cell(1, 4), "0");
        // The uncertified baselines never skip.
        assert_eq!(t.cell(0, 4), "0");
        assert_eq!(t.cell(2, 4), "0");
        // Certified prevention fires too.
        assert_ne!(t.cell(3, 4), "0");
        // The negative control condemns every universe.
        assert!(t.cell(4, 1).starts_with("0/"));
    }
}
