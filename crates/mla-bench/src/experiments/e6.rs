//! E6 — Audit interference (§1's motivating scenario, quantified).
//!
//! The whole-bank audit must be atomic with respect to transfers; under
//! serializability the transfers must *also* be atomic with respect to
//! each other, so a running audit (or a contended moment) stalls
//! everything. Under multilevel atomicity the transfers keep weaving at
//! their phase boundaries while the audit serializes against them.
//! Reports transfer throughput and audit commit latency, with audits on
//! and off.

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, Banking, BankingConfig};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Mean commit latency of the audit transactions (all transactions
/// commit, so `commit_latencies` is indexed by TxnId).
fn audit_latency(b: &Banking, latencies: &[u64]) -> f64 {
    if b.bank_audits.is_empty() {
        return 0.0;
    }
    b.bank_audits
        .iter()
        .map(|a| latencies[a.index()] as f64)
        .sum::<f64>()
        / b.bank_audits.len() as f64
}

/// Runs E6.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E6: audit interference (transfer throughput, audit latency)",
        &[
            "audits",
            "control",
            "thru/kt",
            "audit-latency",
            "aborts",
            "defers",
        ],
    );
    let policy = VictimPolicy::FewestSteps;
    let controls = [
        ControlKind::TwoPl,
        ControlKind::MlaPrevent(policy),
        ControlKind::MlaDetect(policy),
    ];
    for &audits in &[0usize, 2] {
        let b = generate(BankingConfig {
            transfers: if quick { 12 } else { 24 },
            bank_audits: audits,
            credit_audits: 0,
            arrival_spacing: 2,
            ..BankingConfig::default()
        });
        for &kind in &controls {
            let cell = run_cell(&b.workload, kind, 0xE6);
            table.row(vec![
                audits.to_string(),
                kind.label().to_string(),
                f2(cell.outcome.metrics.throughput_per_kilotick()),
                f2(audit_latency(&b, &cell.outcome.metrics.commit_latencies)),
                cell.outcome.metrics.aborts.to_string(),
                cell.outcome.metrics.defers.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_rows_and_zero_audit_latency_without_audits() {
        let t = run(true);
        assert_eq!(t.len(), 6);
        for r in 0..3 {
            assert_eq!(t.cell(r, 3), "0.00", "no audits, no audit latency");
        }
    }
}
