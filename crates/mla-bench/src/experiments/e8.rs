//! E8 — Degeneration/crossover: breakpoint density from 0 to 1.
//!
//! §4.3's two special cases as the endpoints of one dial: density 0
//! (no breakpoints) is exactly serializability; density 1 within a
//! single `π(2)` class is exactly arbitrary interleaving (and equals
//! Garcia-Molina's compatibility sets). The sweep reports offline
//! acceptance (Theorem 2 correctability of random interleavings) and
//! online throughput under MLA-detect.

use mla_cc::VictimPolicy;
use mla_core::serializability::is_serializable;
use mla_core::theorem::is_correctable;
use mla_workload::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::{random_execution, seeds};
use crate::runner::{run_seeds, ControlKind};
use crate::table::{f2, pct, Table};

/// Runs E8.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E8: density crossover (offline acceptance + mla-detect throughput)",
        &[
            "density",
            "correctable",
            "serializable",
            "agree@0",
            "thru/kt",
        ],
    );
    let densities: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let samples = if quick { 30 } else { 120 };
    for &d in densities {
        let mut correctable = 0usize;
        let mut serializable = 0usize;
        let mut agree = true;
        let mut rng = SmallRng::seed_from_u64(0xE8);
        for round in 0..samples {
            let s = generate(SyntheticConfig {
                txns: 4,
                k: 3,
                fanout: vec![1],
                densities: vec![d],
                len_min: 2,
                len_max: 4,
                entities: 4,
                seed: 600 + round as u64,
                ..SyntheticConfig::default()
            });
            let exec = random_execution(&s.workload, &mut rng, 16);
            let c = is_correctable(&exec, &s.workload.nest, &s.workload.spec()).unwrap();
            let z = is_serializable(&exec);
            correctable += c as usize;
            serializable += z as usize;
            if d == 0.0 && c != z {
                agree = false;
            }
        }
        // Online: simulate under MLA-detect at this density.
        let sim = generate(SyntheticConfig {
            txns: if quick { 10 } else { 20 },
            k: 3,
            fanout: vec![1],
            densities: vec![d],
            len_min: 3,
            len_max: 5,
            entities: 6,
            zipf_theta: 0.8,
            arrival_spacing: 2,
            seed: 0xE8,
        });
        let agg = run_seeds(
            &sim.workload,
            ControlKind::MlaDetect(VictimPolicy::FewestSteps),
            &seeds(quick),
        );
        table.row(vec![
            format!("{d:.1}"),
            pct(correctable as f64 / samples as f64),
            pct(serializable as f64 / samples as f64),
            if d == 0.0 {
                if agree { "yes" } else { "NO" }.to_string()
            } else {
                "-".to_string()
            },
            f2(agg.throughput),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_density_zero_is_serializability() {
        let t = run(true);
        assert_eq!(t.cell(0, 3), "yes", "at density 0, Theorem 2 == SGT");
        // Endpoint acceptance ordering: density 1 >= density 0.
        let lo: f64 = t.cell(0, 1).trim_end_matches('%').parse().unwrap();
        let hi: f64 = t
            .cell(t.len() - 1, 1)
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(hi >= lo);
        assert_eq!(hi, 100.0, "density 1 within one class accepts all");
    }
}
