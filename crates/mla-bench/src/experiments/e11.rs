//! E11 (extension) — blocking vs non-blocking audits.
//!
//! §1 cites \[FGL\] for an audit that "does not stop transactions in
//! progress". The escrow workload expresses that trick *inside*
//! multilevel atomicity: transfers bank their pocket through a visible
//! escrow entity and expose a level-2 breakpoint at the balanced point;
//! the audit reads accounts + escrow and nests with customers at level 2
//! instead of level 1. A straddled transfer then parks one or two steps
//! away at its balanced point instead of having to run to completion (or
//! stall the audit for its whole remaining duration).
//!
//! Both variants must — and do — observe exactly the true total. The
//! measured outcome is a *negative* performance result worth reporting:
//! within flat multilevel atomicity the escrow's two extra steps, its
//! per-family entity contention, and the deadlock-resolution aborts of
//! straddled transfers cost more than balanced-point parking saves, for
//! short and long transfers alike and under both MLA controls. \[FGL\]'s
//! actual construction is message-based and cooperative; the breakpoint
//! criterion alone does not recover it for free. (An early variant of
//! this experiment also showed why the audit must stay atomic: an
//! interruptible audit *legally* observes torn sums when a transfer
//! splits at its balanced point around two of the audit's reads.)

use mla_cc::VictimPolicy;
use mla_model::Value;
use mla_workload::banking::{generate, Banking, BankingConfig};
use mla_workload::banking_escrow::generate_escrow;

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

fn audit_metrics(b: &Banking, cell: &crate::runner::CellResult) -> (f64, bool) {
    let latencies = &cell.outcome.metrics.commit_latencies;
    let lat = b
        .bank_audits
        .iter()
        .map(|a| latencies[a.index()] as f64)
        .sum::<f64>()
        / b.bank_audits.len().max(1) as f64;
    let expected = b.total_money();
    let exact = b.bank_audits.iter().all(|&a| {
        let sum: Value = cell
            .outcome
            .execution
            .steps()
            .iter()
            .filter(|s| s.txn == a)
            .map(|s| s.observed)
            .sum();
        sum == expected
    });
    (lat, exact)
}

/// Runs E11.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E11 (extension): blocking vs escrow audits, both MLA controls",
        &[
            "audit kind",
            "thru/kt",
            "audit-latency",
            "defers",
            "aborts",
            "audit-exact",
        ],
    );
    // Short transfers (1-3 withdrawals) and long ones (5-8 withdrawals,
    // forced by a target amount spanning several balances): the escrow's
    // two extra steps are pure overhead for short transfers, while long
    // transfers profit from parking at the balanced point instead of
    // stalling the audit (or being stalled) for their whole run.
    let base = BankingConfig {
        transfers: if quick { 10 } else { 20 },
        bank_audits: 2,
        credit_audits: 0,
        arrival_spacing: 2,
        ..BankingConfig::default()
    };
    let long = BankingConfig {
        accounts_per_family: 10,
        amount: 500,
        sources_min: 5,
        sources_max: 8,
        ..base.clone()
    };
    for (label, banking, kind) in [
        (
            "short/blocking/prevent",
            generate(base.clone()),
            ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
        ),
        (
            "short/escrow/prevent",
            generate_escrow(base.clone()),
            ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
        ),
        (
            "long/blocking/prevent",
            generate(long.clone()),
            ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
        ),
        (
            "long/escrow/prevent",
            generate_escrow(long.clone()),
            ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
        ),
        (
            "short/blocking/detect",
            generate(base.clone()),
            ControlKind::MlaDetect(VictimPolicy::Requester),
        ),
        (
            "short/escrow/detect",
            generate_escrow(base),
            ControlKind::MlaDetect(VictimPolicy::Requester),
        ),
        (
            "long/blocking/detect",
            generate(long.clone()),
            ControlKind::MlaDetect(VictimPolicy::Requester),
        ),
        (
            "long/escrow/detect",
            generate_escrow(long),
            ControlKind::MlaDetect(VictimPolicy::Requester),
        ),
    ] {
        let cell = run_cell(&banking.workload, kind, 0xE11);
        let (audit_latency, exact) = audit_metrics(&banking, &cell);
        table.row(vec![
            label.to_string(),
            f2(cell.outcome.metrics.throughput_per_kilotick()),
            f2(audit_latency),
            cell.outcome.metrics.defers.to_string(),
            cell.outcome.metrics.aborts.to_string(),
            if exact { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(exact, "{label}: audit observed an inconsistent total");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_all_audits_exact() {
        let t = run(true);
        assert_eq!(t.len(), 8);
        for r in 0..8 {
            assert_eq!(t.cell(r, 5), "yes");
        }
    }
}
