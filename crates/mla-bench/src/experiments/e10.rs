//! E10 — Lemma 1 as an algorithm: the cost of *constructing* the
//! equivalent multilevel-atomic witness, beyond merely deciding
//! acyclicity. Validates every produced witness against the membership
//! checker.
//!
//! Correctable executions of nontrivial length are exponentially rare
//! among random interleavings (that is E1/E2's point), so the inputs are
//! produced by actually running the workload under the §6 prevention
//! scheduler — whose histories are correctable by construction.

use std::time::Instant;

use mla_cc::{MlaPrevent, VictimPolicy};
use mla_core::closure::CoherentClosure;
use mla_core::extend::witness_execution;
use mla_core::is_multilevel_atomic;
use mla_core::spec::ExecContext;
use mla_sim::{run as sim_run, SimConfig};
use mla_workload::synthetic::{generate, SyntheticConfig};

use crate::table::Table;

/// Runs E10.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E10: Lemma 1 witness construction cost (microseconds)",
        &["steps", "closure-only", "closure+witness", "witness-valid"],
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(8, 48), (16, 96)]
    } else {
        &[(8, 48), (16, 96), (32, 192), (64, 384), (96, 768)]
    };
    for &(txns, target_steps) in sizes {
        let s = generate(SyntheticConfig {
            txns,
            k: 4,
            fanout: vec![2, 2],
            densities: vec![0.3, 0.8],
            len_min: target_steps / txns,
            len_max: target_steps / txns,
            entities: txns * 2,
            zipf_theta: 0.4,
            arrival_spacing: 2,
            seed: 0xE10,
        });
        let wl = &s.workload;
        let spec = wl.spec();
        let mut control = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
        let out = sim_run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &SimConfig::seeded(0xE10),
            &mut control,
        );
        assert!(!out.metrics.timed_out, "E10 input simulation timed out");
        let exec = out.execution;
        let ctx = ExecContext::new(&exec, &wl.nest, &spec).expect("context");

        let t0 = Instant::now();
        let closure = CoherentClosure::compute(&ctx);
        let closure_us = t0.elapsed().as_secs_f64() * 1e6;
        assert!(
            closure.is_partial_order(),
            "prevention histories are correctable by construction"
        );
        let t1 = Instant::now();
        let witness = witness_execution(&ctx, &closure).expect("acyclic extends");
        let witness_us = closure_us + t1.elapsed().as_secs_f64() * 1e6;
        let valid =
            exec.equivalent(&witness) && is_multilevel_atomic(&witness, &wl.nest, &spec).unwrap();
        table.row(vec![
            exec.len().to_string(),
            format!("{closure_us:.1}"),
            format!("{witness_us:.1}"),
            if valid { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(valid, "Lemma 1 produced an invalid witness");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_witnesses_validate() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        for r in 0..t.len() {
            assert_ne!(t.cell(r, 3), "NO");
            // Witness construction cost is reported as a real number.
            let _: f64 = t.cell(r, 2).parse().unwrap();
        }
    }
}
