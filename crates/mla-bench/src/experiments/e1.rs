//! E1 — Acceptance: how much larger than the serial set is `C(π, 𝔅)`?
//!
//! Random interleavings of a single-`π(2)`-class synthetic workload,
//! swept over breakpoint density and nest depth. Reports the fraction of
//! interleavings that are multilevel atomic vs. the fraction that are
//! serial. Density 0 must collapse the former to (nearly) the latter;
//! density 1 must accept everything.

use mla_core::is_multilevel_atomic;
use mla_workload::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::random_execution;
use crate::table::{pct, Table};

/// Runs E1.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E1: random-interleaving acceptance, multilevel atomic vs serial",
        &["k", "density", "samples", "mla-atomic", "serial"],
    );
    let samples = if quick { 30 } else { 150 };
    let densities: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    for &k in &[3usize, 4] {
        for &d in densities {
            let mut atomic = 0usize;
            let mut serial = 0usize;
            let mut rng = SmallRng::seed_from_u64(0xE1 + k as u64);
            for round in 0..samples {
                let s = generate(SyntheticConfig {
                    txns: 4,
                    k,
                    fanout: vec![1; k - 2], // one class: density is the axis
                    densities: vec![d; k - 2],
                    len_min: 2,
                    len_max: 4,
                    entities: 6,
                    seed: 7000 + round as u64,
                    ..SyntheticConfig::default()
                });
                let exec = random_execution(&s.workload, &mut rng, 16);
                if exec.is_serial() {
                    serial += 1;
                }
                if is_multilevel_atomic(&exec, &s.workload.nest, &s.workload.spec())
                    .expect("context builds")
                {
                    atomic += 1;
                }
            }
            table.row(vec![
                k.to_string(),
                format!("{d:.2}"),
                samples.to_string(),
                pct(atomic as f64 / samples as f64),
                pct(serial as f64 / samples as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shapes() {
        let t = run(true);
        assert_eq!(t.len(), 6);
        // Density 1.0 row for k=3 accepts everything.
        let full = t.cell(2, 3);
        assert_eq!(full, "100.0%", "density 1 must accept all: {full}");
        // Acceptance at density 1 strictly exceeds the serial fraction.
        assert_ne!(t.cell(2, 3), t.cell(2, 4));
    }
}
