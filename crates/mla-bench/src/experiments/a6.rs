//! A6 — thread-parallel shard-group decisions.
//!
//! A5 established that sharding the closure engine by entity partition
//! confines each decision's work to the candidate's own universe. A6
//! asks what the worker pool adds on top: the same partitioned scanner
//! stream is decided through [`EngineBackend`] variants directly —
//! serial unsharded, serial sharded, and the thread-parallel backend
//! across a worker-count × shard-count grid — and decision wall-clock is
//! compared without simulator overhead between offers.
//!
//! The replay input is the workload's canonical
//! [`decision_stream`](mla_workload::partitioned::decision_stream):
//! round-robin offers that every backend must fully grant, so histories
//! are asserted byte-identical to the stream itself in every cell and
//! only cost may move. Verdict order is fixed by the sequencer's stamp
//! order (see DESIGN.md), so the parallel cells are bit-for-bit
//! reproducible however the pool schedules.
//!
//! The headline speedup column is measured against the **serial
//! unsharded** baseline, the same convention as A5's `none` row: it is
//! the product of the sharding effect (window confinement) and the
//! pool effect (concurrent group application). The pure threading
//! effect — parallel versus serial sharded at equal shard count — is
//! reported in `vs-shard` and only *asserted* when the host actually
//! has ≥ 4 hardware threads; on a single-core host the pool can at
//! best break even and the column is informational.
//!
//! Two trailing `sim/…` rows run the full simulator with the
//! [`ControlKind::MlaDetectParallel`] knob to pin the scheduler-level
//! integration: identical histories and decision counters to the serial
//! sharded control, occupancy and barrier stalls reported through
//! [`Metrics::parallel`](mla_sim::Metrics).

use std::time::Instant;

use mla_cc::VictimPolicy;
use mla_core::EngineBackend;
use mla_model::Step;
use mla_txn::RuntimeSpec;
use mla_workload::partitioned::{decision_stream, generate, PartitionedConfig};
use mla_workload::Workload;

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Decides the whole stream through `backend`, asserting every offer
/// grants and the maintained history reproduces the stream byte for
/// byte. Returns decision wall-clock seconds.
fn replay(backend: &mut EngineBackend<RuntimeSpec>, stream: &[Step]) -> f64 {
    let started = Instant::now();
    let verdicts = backend.decide_batch(stream);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(verdicts.len(), stream.len());
    for (i, v) in verdicts.iter().enumerate() {
        assert!(v.is_ok(), "offer {i} denied on the conflict-chain stream");
    }
    assert_eq!(
        backend.execution().steps(),
        stream,
        "replay history diverged from the offered stream"
    );
    wall
}

fn backend_row(
    table: &mut Table,
    label_shards: String,
    label_workers: String,
    wall: f64,
    base_wall: f64,
    shard_wall: Option<f64>,
    backend: &EngineBackend<RuntimeSpec>,
) -> f64 {
    let speedup = if wall > 0.0 { base_wall / wall } else { 0.0 };
    let vs_shard = match shard_wall {
        Some(s) if wall > 0.0 => f2(s / wall),
        _ => "-".to_string(),
    };
    let (occ, stalls) = match backend.parallel_stats() {
        Some(stats) => (f2(stats.mean_occupancy()), stats.barrier_stalls.to_string()),
        None => ("-".to_string(), "0".to_string()),
    };
    table.row(vec![
        label_shards,
        label_workers,
        f2(wall * 1e3),
        f2(speedup),
        vs_shard,
        occ,
        backend.merge_count().to_string(),
        stalls,
        "yes".to_string(),
    ]);
    speedup
}

/// The simulator-level integration rows: the parallel knob on
/// `MlaDetect` must change nothing but wall-clock and pool statistics.
fn sim_rows(table: &mut Table, wl: &Workload) {
    let policy = VictimPolicy::FewestSteps;
    let seed = 0xA6;
    let serial = run_cell(wl, ControlKind::MlaDetectSharded(policy, 4), seed);
    let cell = run_cell(wl, ControlKind::MlaDetectParallel(policy, 4, 2), seed);
    assert_eq!(
        cell.outcome.execution, serial.outcome.execution,
        "parallel control history diverged from the serial sharded run"
    );
    let sm = &serial.outcome.metrics;
    let m = &cell.outcome.metrics;
    assert_eq!(m.aborts, 0);
    assert_eq!(m.committed, sm.committed);
    assert_eq!(m.decision_cost, sm.decision_cost);
    assert_eq!(m.shard_cost, sm.shard_cost);
    let stats = m
        .parallel
        .as_ref()
        .expect("the parallel control must report pool statistics");
    assert_eq!(stats.workers, 2);
    assert!(sm.parallel.is_none());
    for (label, cell, base, stats) in [
        ("sim/4", &serial, None, None),
        ("sim/4", &cell, Some(serial.wall_seconds), Some(stats)),
    ] {
        table.row(vec![
            label.to_string(),
            stats.map(|s| s.workers).unwrap_or(0).to_string(),
            f2(cell.wall_seconds * 1e3),
            "-".to_string(),
            match base {
                Some(b) if cell.wall_seconds > 0.0 => f2(b / cell.wall_seconds),
                _ => "-".to_string(),
            },
            stats
                .map(|s| f2(s.mean_occupancy()))
                .unwrap_or_else(|| "-".to_string()),
            (4 - cell.outcome.metrics.shard_cost.len() as u64).to_string(),
            stats
                .map(|s| s.barrier_stalls.to_string())
                .unwrap_or_else(|| "0".to_string()),
            "yes".to_string(),
        ]);
    }
}

/// Runs A6.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A6: thread-parallel shard-group decisions (replayed scanner stream)",
        &[
            "shards",
            "workers",
            "wall-ms",
            "speedup",
            "vs-shard",
            "mean-occ",
            "merges",
            "stalls",
            "same-history",
        ],
    );
    let config = if quick {
        PartitionedConfig {
            partitions: 4,
            txns_per_partition: 20,
            scanner_len: 20,
            arrival_spacing: 2,
        }
    } else {
        PartitionedConfig::default()
    };
    let generated = generate(config.clone());
    let wl = &generated.workload;
    let stream = decision_stream(&config);

    // Serial unsharded baseline — A5's `none` row convention.
    let mut base = EngineBackend::unsharded(wl.nest.clone(), wl.spec());
    let base_wall = replay(&mut base, &stream);
    backend_row(
        &mut table,
        "none".to_string(),
        "0".to_string(),
        base_wall,
        base_wall,
        None,
        &base,
    );

    let four_threads = std::thread::available_parallelism()
        .map(|n| n.get() >= 4)
        .unwrap_or(false);
    let mut speedup_at_4x4 = 0.0;
    for shards in [4usize, 8] {
        let mut serial = EngineBackend::with_shards(wl.nest.clone(), wl.spec(), shards);
        let serial_wall = replay(&mut serial, &stream);
        backend_row(
            &mut table,
            shards.to_string(),
            "0".to_string(),
            serial_wall,
            base_wall,
            None,
            &serial,
        );
        for workers in [1usize, 2, 4] {
            let mut backend =
                EngineBackend::with_parallelism(wl.nest.clone(), wl.spec(), shards, workers);
            let wall = replay(&mut backend, &stream);
            // No offer is denied, so the pool sees exactly the serial
            // merge sequence: group structure must agree.
            assert_eq!(
                backend.merge_count(),
                serial.merge_count(),
                "parallel coalescing diverged at {shards} shards"
            );
            let speedup = backend_row(
                &mut table,
                shards.to_string(),
                workers.to_string(),
                wall,
                base_wall,
                Some(serial_wall),
                &backend,
            );
            if shards == 4 && workers == 4 {
                speedup_at_4x4 = speedup;
                if four_threads && !quick {
                    assert!(
                        wall < serial_wall * 1.2,
                        "4 workers on 4 hardware threads must not lose to the \
                         serial sharded engine ({wall:.4}s vs {serial_wall:.4}s)"
                    );
                }
            }
        }
    }
    if !quick {
        assert!(
            speedup_at_4x4 >= 1.5,
            "4 shards × 4 workers must beat serial unsharded decisions by \
             1.5x on the partitioned workload (got {speedup_at_4x4:.2}x)"
        );
    }

    sim_rows(&mut table, wl);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6_histories_invariant_across_pool_shapes() {
        let t = run(true);
        // 1 baseline + 2 shard counts × (1 serial + 3 pool shapes) + 2
        // simulator rows.
        assert_eq!(t.len(), 11);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 8), "yes", "row {r}");
        }
        // The 8-shard cells must have coalesced (8 shards over 4
        // universes), identically in serial and parallel rows.
        let serial_merges = t.cell(5, 6).to_string();
        assert!(serial_merges.parse::<u64>().unwrap() > 0);
        for r in 6..9 {
            assert_eq!(t.cell(r, 6), serial_merges, "row {r}");
        }
        // Parallel rows report pool statistics, serial rows do not.
        assert_eq!(t.cell(1, 5), "-");
        assert_ne!(t.cell(2, 5), "-");
        // Barrier stalls equal merges on every parallel replay row.
        for r in [2usize, 3, 4, 6, 7, 8] {
            assert_eq!(t.cell(r, 7), t.cell(r, 6), "row {r}");
        }
    }
}
