//! A5 — sharding the closure engine by entity partition.
//!
//! The partitioned scanner workload (`mla-workload::partitioned`) keeps
//! one long-lived atomic transaction per entity universe, so every
//! universe's whole history stays in the live window and each decision's
//! closure work grows with the *global* window under the unsharded
//! engine. Sharding the engine by entity partition confines that work to
//! the candidate's own universe.
//!
//! Decisions are provably identical across shard counts (the workload is
//! conflict-chain-shaped and abort-free, and the sharded engine
//! maintains the exact disjoint-union closure — see DESIGN.md and the
//! differential harness), so every cell must reproduce the unsharded
//! history byte for byte; only the cost columns may move. The 1-shard
//! cell is additionally asserted *counter-identical* to the unsharded
//! engine: one group over everything is the same computation.
//!
//! A shard count above the universe count (the 8-shard cell over 4
//! universes) splits universes across shards, so the first scanner step
//! beyond a universe's opening entity coalesces its two groups — the
//! merge path is exercised in-sweep and must change nothing but cost.

use mla_cc::VictimPolicy;
use mla_workload::partitioned::{generate, PartitionedConfig};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Runs A5.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A5: entity-sharded closure engine (mla-detect, partitioned scanner workload)",
        &[
            "shards",
            "wall-ms",
            "speedup",
            "rows/dec",
            "edges",
            "merges",
            "throughput",
            "same-history",
        ],
    );
    let config = if quick {
        PartitionedConfig {
            partitions: 4,
            txns_per_partition: 20,
            scanner_len: 20,
            arrival_spacing: 2,
        }
    } else {
        PartitionedConfig::default()
    };
    let generated = generate(config);
    let wl = &generated.workload;
    let policy = VictimPolicy::FewestSteps;
    let seed = 0xA5;

    let base = run_cell(wl, ControlKind::MlaDetect(policy), seed);
    assert_eq!(
        base.outcome.metrics.aborts, 0,
        "the scanner workload is conflict-chain-shaped and must not abort"
    );
    let base_metrics = base.outcome.metrics.clone();
    table.row(vec![
        "none".to_string(),
        f2(base.wall_seconds * 1e3),
        f2(1.0),
        f2(base_metrics.rows_per_decision()),
        base_metrics.decision_cost.edges_inserted.to_string(),
        "0".to_string(),
        f2(base_metrics.throughput_per_kilotick()),
        "yes".to_string(),
    ]);

    let mut speedup_at_4 = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let cell = run_cell(wl, ControlKind::MlaDetectSharded(policy, shards), seed);
        let m = &cell.outcome.metrics;
        let same = cell.outcome.execution == base.outcome.execution;
        // Merges are observable through the group structure: with g live
        // groups left of the `shards` initial ones, shards - g merges ran.
        let merges = shards as u64 - m.shard_cost.len() as u64;
        let speedup = if cell.wall_seconds > 0.0 {
            base.wall_seconds / cell.wall_seconds
        } else {
            0.0
        };
        if shards == 4 {
            speedup_at_4 = speedup;
        }
        table.row(vec![
            shards.to_string(),
            f2(cell.wall_seconds * 1e3),
            f2(speedup),
            f2(m.rows_per_decision()),
            m.decision_cost.edges_inserted.to_string(),
            merges.to_string(),
            f2(m.throughput_per_kilotick()),
            if same { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(
            same,
            "sharded ({shards}) history diverged from the unsharded run"
        );
        assert_eq!(m.aborts, 0);
        assert_eq!(
            m.decision_cost,
            m.shard_cost.iter().copied().sum(),
            "reported decision cost must be the sum over shards"
        );
        if shards == 1 {
            assert_eq!(
                m.decision_cost, base_metrics.decision_cost,
                "one shard group is the unsharded computation, counter for counter"
            );
        }
    }
    if !quick {
        assert!(
            speedup_at_4 >= 2.0,
            "4-way sharding must at least halve decision wall-clock on the \
             partitioned workload (got {speedup_at_4:.2}x)"
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a5_histories_invariant_and_sharding_cuts_rows_per_decision() {
        let t = run(true);
        assert_eq!(t.len(), 5);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 7), "yes");
        }
        // Row 0 is unsharded, row 3 is the 4-shard cell matching the 4
        // partitions: per-decision closure work must drop. The counters
        // are fully deterministic (seeded simulation), so a strict
        // margin is stable; the large wall-clock effect — per-decision
        // column scans and eviction confined to one universe — is
        // asserted by the full-size experiment, not here. rows/dec
        // differs because a universe's post-commit mass eviction
        // triggers a compaction rebuild scoped to one shard group
        // instead of replaying every other universe's live window.
        let flat: f64 = t.cell(0, 3).parse().unwrap();
        let sharded: f64 = t.cell(3, 3).parse().unwrap();
        assert!(
            sharded * 1.1 < flat,
            "4-way sharding must cut rows/dec ({sharded} vs {flat})"
        );
        // The 1-shard cell reports the same work totals as unsharded.
        assert_eq!(t.cell(0, 4), t.cell(1, 4), "edge totals must match");
        assert_eq!(t.cell(0, 3), t.cell(1, 3), "rows/dec must match");
        // The 8-shard cell over 4 universes must have coalesced.
        let merges: u64 = t.cell(4, 5).parse().unwrap();
        assert!(merges > 0, "8 shards over 4 universes must merge");
    }
}
