//! E3 — Checker cost: what does the Theorem 2 acyclicity test cost,
//! against the classical conflict-graph serializability test, as the
//! execution grows? Also reports the A1 ablation (frontier closure vs.
//! the literal bitset reference) at sizes the reference can stomach.

use std::time::Instant;

use mla_core::closure::{coherent_closure_exact, CoherentClosure};
use mla_core::serializability::is_serializable;
use mla_core::spec::ExecContext;
use mla_workload::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::random_execution;
use crate::table::Table;

fn micros(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e6
}

/// Runs E3.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E3: offline checker cost (microseconds per execution)",
        &[
            "steps",
            "txns",
            "frontier-closure",
            "exact-closure",
            "sgt-check",
        ],
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(8, 64), (16, 128)]
    } else {
        &[(8, 64), (16, 128), (32, 256), (64, 512), (128, 1024)]
    };
    for &(txns, target_steps) in sizes {
        let s = generate(SyntheticConfig {
            txns,
            k: 3,
            fanout: vec![2],
            densities: vec![0.5],
            len_min: target_steps / txns,
            len_max: target_steps / txns,
            entities: txns * 2,
            seed: 0xE3,
            ..SyntheticConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let exec = random_execution(&s.workload, &mut rng, target_steps);
        let nest = &s.workload.nest;
        let spec = s.workload.spec();
        let ctx = ExecContext::new(&exec, nest, &spec).expect("context");

        let frontier_us = micros(|| {
            let c = CoherentClosure::compute(&ctx);
            std::hint::black_box(c.is_partial_order());
        });
        let exact_us = if exec.len() <= 256 {
            format!(
                "{:.1}",
                micros(|| {
                    let p = coherent_closure_exact(&ctx);
                    std::hint::black_box(p.len());
                })
            )
        } else {
            "-".to_string()
        };
        let sgt_us = micros(|| {
            std::hint::black_box(is_serializable(&exec));
        });
        table.row(vec![
            exec.len().to_string(),
            txns.to_string(),
            format!("{frontier_us:.1}"),
            exact_us,
            format!("{sgt_us:.1}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_produces_rows() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        let us: f64 = t.cell(0, 2).parse().unwrap();
        assert!(us > 0.0);
    }
}
