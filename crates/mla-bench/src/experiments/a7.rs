//! A7 — the certified fast path: static safety analysis replacing
//! runtime closure maintenance.
//!
//! `mla-lint`'s third pass applies the §5 characterization *statically*:
//! it builds a may-conflict graph over breakpoint-free segments from the
//! transactions' entity footprints and, when no mixed cycle is possible
//! under any interleaving, issues a [`StaticCert`](mla_core::StaticCert).
//! A certified scheduler then answers every in-footprint decision with
//! an O(log n) footprint guard instead of incremental closure
//! maintenance. A7 measures what that buys and pins what it must not
//! change.
//!
//! Replay rows decide the partitioned workload's canonical
//! [`decision_stream`](mla_workload::partitioned::decision_stream)
//! twice: through the serial unsharded closure engine (the A5/A6
//! baseline convention) and through the bare certificate guard. Both
//! must reproduce the stream byte for byte; only wall-clock may move,
//! and in the full sweep the guard must win by ≥ 1.5x.
//!
//! Simulator rows run the full scheduler loop. `mla-detect/certified`
//! must produce the *identical history* to `mla-detect` — the
//! certificate only skips work the engine would have done to reach the
//! same Grant — with every decision counted in
//! [`Metrics::certified_skips`](mla_sim::Metrics) and zero closure cost.
//! `mla-prevent/certified` is sound but **not** history-identical to
//! `mla-prevent`: the uncertified preventer delays steps at breakpoints
//! it cannot prove safe, while the certificate proves every
//! interleaving correctable up front, so the certified run grants
//! everything with zero defers (`same-history` reads `no` by design;
//! `run_cell` still verifies the outcome against Theorem 2).
//!
//! The trailing `banking` row is the negative control: its audits close
//! mixed cycles through level-2 transfer segments, `certify_workload`
//! refuses a certificate, and the fast path is simply unavailable — no
//! silent unsound speedup.

use std::time::Instant;

use mla_cc::VictimPolicy;
use mla_core::EngineBackend;
use mla_workload::banking::{generate as generate_banking, BankingConfig};
use mla_workload::partitioned::{decision_stream, generate, PartitionedConfig};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Runs A7.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A7: certified fast path vs incremental closure maintenance",
        &[
            "row",
            "cert",
            "wall-ms",
            "speedup",
            "cert-skips",
            "defers",
            "closure-rows",
            "same-history",
        ],
    );
    let config = if quick {
        PartitionedConfig {
            partitions: 4,
            txns_per_partition: 20,
            scanner_len: 20,
            arrival_spacing: 2,
        }
    } else {
        PartitionedConfig::default()
    };
    let generated = generate(config.clone());
    let wl = &generated.workload;
    let certification = mla_lint::certify_workload(wl);
    let cert = certification
        .cert
        .expect("the partitioned workload must earn a static certificate");
    let stream = decision_stream(&config);

    // Replay baseline: the serial unsharded engine decides the stream.
    let mut engine = EngineBackend::unsharded(wl.nest.clone(), wl.spec());
    let started = Instant::now();
    let verdicts = engine.decide_batch(&stream);
    let engine_wall = started.elapsed().as_secs_f64();
    assert!(verdicts.iter().all(|v| v.is_ok()));
    assert_eq!(engine.execution().steps(), stream.as_slice());
    let engine_rows = engine.counters().rows_touched;
    table.row(vec![
        "replay/engine".to_string(),
        "-".to_string(),
        f2(engine_wall * 1e3),
        f2(1.0),
        "0".to_string(),
        "-".to_string(),
        engine_rows.to_string(),
        "yes".to_string(),
    ]);

    // Replay fast path: the same stream through the bare footprint
    // guard, maintaining the history the granted steps build.
    let started = Instant::now();
    let mut history = Vec::with_capacity(stream.len());
    let mut skips = 0u64;
    for step in &stream {
        assert!(
            cert.covers(step.txn, step.entity),
            "canonical stream strayed outside the certified footprints"
        );
        skips += 1;
        history.push(*step);
    }
    let guard_wall = started.elapsed().as_secs_f64();
    assert_eq!(history, stream, "the guard grants the stream verbatim");
    let replay_speedup = if guard_wall > 0.0 {
        engine_wall / guard_wall
    } else {
        f64::INFINITY
    };
    table.row(vec![
        "replay/cert".to_string(),
        "issued".to_string(),
        f2(guard_wall * 1e3),
        f2(replay_speedup.min(9999.0)),
        skips.to_string(),
        "-".to_string(),
        "0".to_string(),
        "yes".to_string(),
    ]);
    if !quick {
        assert!(
            replay_speedup >= 1.5,
            "the certificate guard must beat closure maintenance by 1.5x \
             on the partitioned stream (got {replay_speedup:.2}x)"
        );
    }

    // Simulator rows: full scheduler loop, certificate against engine.
    let policy = VictimPolicy::FewestSteps;
    let seed = 0xA7;
    let detect = run_cell(wl, ControlKind::MlaDetect(policy), seed);
    let detect_cert = run_cell(wl, ControlKind::MlaDetectCertified(policy), seed);
    assert_eq!(
        detect_cert.outcome.execution, detect.outcome.execution,
        "certified detection must replicate the uncertified history"
    );
    let dm = &detect.outcome.metrics;
    let cm = &detect_cert.outcome.metrics;
    assert_eq!(cm.committed, dm.committed);
    assert!(cm.certified_skips > 0, "the fast path must actually fire");
    assert_eq!(
        cm.decision_cost.rows_touched, 0,
        "a fully certified run must never touch the closure"
    );
    assert_eq!(dm.certified_skips, 0);

    let prevent = run_cell(wl, ControlKind::MlaPrevent(policy), seed);
    let prevent_cert = run_cell(wl, ControlKind::MlaPreventCertified(policy), seed);
    let pm = &prevent.outcome.metrics;
    let qm = &prevent_cert.outcome.metrics;
    assert_eq!(qm.committed, pm.committed);
    assert!(qm.certified_skips > 0);
    assert_eq!(
        qm.defers, 0,
        "the certificate discharges every breakpoint wait up front"
    );
    for (label, cell, base, same) in [
        ("sim/detect", &detect, None, "-"),
        ("sim/detect+cert", &detect_cert, Some(&detect), "yes"),
        ("sim/prevent", &prevent, None, "-"),
        ("sim/prevent+cert", &prevent_cert, Some(&prevent), "no"),
    ] {
        let m = &cell.outcome.metrics;
        let speedup = match base {
            Some(b) if cell.wall_seconds > 0.0 => f2(b.wall_seconds / cell.wall_seconds),
            _ => "-".to_string(),
        };
        table.row(vec![
            label.to_string(),
            if base.is_some() { "issued" } else { "-" }.to_string(),
            f2(cell.wall_seconds * 1e3),
            speedup,
            m.certified_skips.to_string(),
            m.defers.to_string(),
            m.decision_cost.rows_touched.to_string(),
            same.to_string(),
        ]);
    }

    // Negative control: banking's audits deny certification.
    let banking = generate_banking(if quick {
        BankingConfig {
            transfers: 8,
            ..BankingConfig::default()
        }
    } else {
        BankingConfig::default()
    });
    let denial = mla_lint::certify_workload(&banking.workload);
    assert!(
        denial.cert.is_none(),
        "banking must not certify: the audits close mixed cycles"
    );
    table.row(vec![
        "banking".to_string(),
        "denied".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a7_certifies_partitioned_and_denies_banking() {
        let t = run(true);
        // 2 replay rows + 4 simulator rows + the banking denial.
        assert_eq!(t.len(), 7);
        assert_eq!(t.cell(1, 1), "issued");
        assert_eq!(t.cell(1, 7), "yes");
        // The certified guard replays with zero closure rows.
        assert_eq!(t.cell(1, 6), "0");
        assert_ne!(t.cell(0, 6), "0");
        // Certified detection: history-identical, all decisions skipped.
        assert_eq!(t.cell(3, 7), "yes");
        assert_ne!(t.cell(3, 4), "0");
        assert_eq!(t.cell(3, 6), "0");
        // Certified prevention: sound but deliberately not identical.
        assert_eq!(t.cell(5, 7), "no");
        assert_eq!(t.cell(5, 5), "0");
        // The negative control stays denied.
        assert_eq!(t.cell(6, 1), "denied");
    }
}
