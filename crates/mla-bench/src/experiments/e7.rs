//! E7 — The value of hierarchy depth (CAD, §2 Application 2).
//!
//! The CAD 5-nest expresses a *trust gradient*: team-mates interleave
//! anywhere, specialty colleagues at small units, strangers at coarse
//! consistency points, snapshots nowhere. Sweeping the breakpoint
//! hierarchy from fully atomic (serializability) to the full gradient
//! measures what each level of trust buys.

use mla_cc::VictimPolicy;
use mla_workload::cad::{generate, CadConfig};

use crate::experiments::seeds;
use crate::runner::{run_seeds, ControlKind};
use crate::table::{f2, Table};

/// Runs E7.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E7: CAD throughput vs breakpoint hierarchy depth (mla-prevent)",
        &["hierarchy", "thru/kt", "latency", "defers", "aborts"],
    );
    let rows: &[(usize, usize, &str)] = &[
        (0, 0, "atomic (serializable)"),
        (4, 0, "specialty/4"),
        (2, 0, "specialty/2"),
        (2, 4, "specialty/2 + global/4"),
        (1, 2, "specialty/1 + global/2"),
    ];
    for &(l3, l2, label) in rows {
        let c = generate(CadConfig {
            modifications: if quick { 10 } else { 18 },
            snapshots: 2,
            level3_unit: l3,
            level2_unit: l2,
            arrival_spacing: 2,
            ..CadConfig::default()
        });
        let agg = run_seeds(
            &c.workload,
            ControlKind::MlaPrevent(VictimPolicy::FewestSteps),
            &seeds(quick),
        );
        table.row(vec![
            label.to_string(),
            f2(agg.throughput),
            f2(agg.latency),
            agg.defers.to_string(),
            agg.aborts.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_deepest_hierarchy_reduces_waiting() {
        // Makespan (and hence throughput) is tail-dominated by the
        // serializing snapshots, so the sensitive metrics are commit
        // latency and breakpoint waits: both must improve with depth.
        let t = run(true);
        assert_eq!(t.len(), 5);
        let atomic_latency: f64 = t.cell(0, 2).parse().unwrap();
        let deepest_latency: f64 = t.cell(4, 2).parse().unwrap();
        assert!(
            deepest_latency <= atomic_latency,
            "full gradient latency ({deepest_latency}) should not exceed \
             atomic ({atomic_latency})"
        );
        let atomic_defers: u64 = t.cell(0, 3).parse().unwrap();
        let deepest_defers: u64 = t.cell(4, 3).parse().unwrap();
        assert!(
            deepest_defers <= atomic_defers,
            "full gradient should wait less ({deepest_defers} vs {atomic_defers})"
        );
    }
}
