//! E5 — Aborts under contention: SGT vs MLA-detect.
//!
//! §6: "Presumably, fewer cycles would be detected using the multilevel
//! atomicity definition than if strict serializability were required,
//! leading to fewer rollbacks." Banking transfers with the phase
//! breakpoint, contention controlled by the size of the account pool
//! (fewer accounts = more conflicts).

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

use crate::experiments::seeds;
use crate::runner::{run_seeds, ControlKind};
use crate::table::{f2, Table};

/// Runs E5.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E5: aborts under contention, SGT (serializability) vs MLA-detect",
        &[
            "accounts",
            "sgt-aborts",
            "mla-aborts",
            "sgt-thru",
            "mla-thru",
        ],
    );
    let pools: &[(usize, usize)] = if quick {
        &[(1, 2), (2, 4)]
    } else {
        &[(1, 2), (1, 4), (2, 4), (4, 4), (8, 4)]
    };
    let policy = VictimPolicy::FewestSteps;
    for &(families, accounts_per_family) in pools {
        let b = generate(BankingConfig {
            families,
            accounts_per_family,
            transfers: if quick { 12 } else { 24 },
            bank_audits: 0,
            credit_audits: 0,
            arrival_spacing: 2,
            intra_family_ratio: 0.7,
            ..BankingConfig::default()
        });
        let sgt = run_seeds(&b.workload, ControlKind::Sgt(policy), &seeds(quick));
        let mla = run_seeds(&b.workload, ControlKind::MlaDetect(policy), &seeds(quick));
        table.row(vec![
            (families * accounts_per_family).to_string(),
            sgt.aborts.to_string(),
            mla.aborts.to_string(),
            f2(sgt.throughput),
            f2(mla.throughput),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_mla_aborts_no_more_than_sgt() {
        let t = run(true);
        for r in 0..t.len() {
            let sgt: u64 = t.cell(r, 1).parse().unwrap();
            let mla: u64 = t.cell(r, 2).parse().unwrap();
            assert!(
                mla <= sgt,
                "row {r}: MLA ({mla}) must not abort more than SGT ({sgt})"
            );
        }
    }
}
