//! E13 (extension) — is §7-style hierarchical lock retention *sound* for
//! multilevel atomicity?
//!
//! [`mla_cc::HierLocking`] is the natural adaptation of nested-
//! transaction two-phase locking: per-entity holds, published to trust
//! level `l` once the holder passes a level-`l` breakpoint. It is the §6
//! delay rule minus the transitive closure — per decision it is far
//! cheaper. This experiment runs it over workload × seed grids and asks
//! the offline Theorem 2 oracle how often its histories are actually
//! correctable, alongside throughput and scheduler wall cost against
//! MLA-prevent.
//!
//! The result answers §7's open question empirically: where conflicts
//! chain transitively (CAD's shared elements; banking's audit chains),
//! lock retention alone admits non-correctable histories — the closure
//! is not an optional optimization but the substance of the criterion.

use mla_cc::{oracle, HierLocking, MlaPrevent, VictimPolicy};
use mla_sim::{run as sim_run, SimConfig};
use mla_workload::banking::{generate as banking, BankingConfig};
use mla_workload::cad::{generate as cad, CadConfig};
use mla_workload::Workload;

use crate::table::{f2, pct, Table};

struct Outcome {
    correct: usize,
    runs: usize,
    throughput: f64,
    wall_ms: f64,
}

fn sweep(wl: &Workload, seeds: &[u64], hier: bool) -> Outcome {
    let mut out = Outcome {
        correct: 0,
        runs: 0,
        throughput: 0.0,
        wall_ms: 0.0,
    };
    let spec = wl.spec();
    for &seed in seeds {
        let started = std::time::Instant::now();
        let result = if hier {
            let mut c = HierLocking::new(wl.txn_count(), VictimPolicy::FewestSteps);
            sim_run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &SimConfig::seeded(seed),
                &mut c,
            )
        } else {
            let mut c = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
            sim_run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &SimConfig::seeded(seed),
                &mut c,
            )
        };
        out.wall_ms += started.elapsed().as_secs_f64() * 1e3;
        assert!(!result.metrics.timed_out);
        if oracle::is_correctable_outcome(&result, &wl.nest, &spec) {
            out.correct += 1;
        }
        out.throughput += result.metrics.throughput_per_kilotick();
        out.runs += 1;
    }
    out.throughput /= out.runs.max(1) as f64;
    out.wall_ms /= out.runs.max(1) as f64;
    out
}

/// Runs E13.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E13 (extension): hierarchical lock retention vs mla-prevent (soundness!)",
        &["workload", "control", "correctable", "thru/kt", "wall-ms"],
    );
    let seeds: Vec<u64> = if quick {
        (1..=4).collect()
    } else {
        (1..=12).collect()
    };
    let workloads: Vec<(String, Workload)> = vec![
        (
            "banking".into(),
            banking(BankingConfig {
                transfers: if quick { 12 } else { 20 },
                bank_audits: 1,
                credit_audits: 1,
                arrival_spacing: 2,
                ..BankingConfig::default()
            })
            .workload,
        ),
        (
            "cad (carrier-prone)".into(),
            cad(CadConfig {
                modifications: 10,
                snapshots: 2,
                level3_unit: 2,
                level2_unit: 0,
                arrival_spacing: 2,
                ..CadConfig::default()
            })
            .workload,
        ),
    ];
    for (name, wl) in &workloads {
        for hier in [false, true] {
            let o = sweep(wl, &seeds, hier);
            table.row(vec![
                name.clone(),
                if hier { "hier-locking" } else { "mla-prevent" }.to_string(),
                pct(o.correct as f64 / o.runs as f64),
                f2(o.throughput),
                f2(o.wall_ms),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_prevent_always_sound_and_grid_runs() {
        let t = run(true);
        assert_eq!(t.len(), 4);
        // mla-prevent rows (0 and 2) are 100% correctable.
        assert_eq!(t.cell(0, 2), "100.0%");
        assert_eq!(t.cell(2, 2), "100.0%");
    }
}
