//! E2 — Correctability: fraction of random executions whose coherent
//! closure is acyclic (Theorem 2) vs. fraction that are
//! conflict-serializable, under rising contention (shrinking entity
//! pool). The gap is the §6 "fewer cycles" conjecture stated offline:
//! every serializable execution is correctable, but not conversely.

use mla_core::serializability::is_serializable;
use mla_core::theorem::is_correctable;
use mla_workload::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::random_execution;
use crate::table::{pct, Table};

/// Runs E2.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E2: correctable (Theorem 2) vs conflict-serializable, by contention",
        &["entities", "samples", "correctable", "serializable", "gap"],
    );
    let samples = if quick { 40 } else { 200 };
    let pools: &[usize] = if quick { &[2, 6] } else { &[2, 3, 4, 6, 10] };
    for &entities in pools {
        let mut correctable = 0usize;
        let mut serializable = 0usize;
        let mut rng = SmallRng::seed_from_u64(0xE2);
        for round in 0..samples {
            let s = generate(SyntheticConfig {
                txns: 4,
                k: 3,
                fanout: vec![1],
                densities: vec![0.6],
                len_min: 2,
                len_max: 4,
                entities,
                zipf_theta: 0.0,
                seed: 8800 + round as u64,
                ..SyntheticConfig::default()
            });
            let exec = random_execution(&s.workload, &mut rng, 16);
            let c = is_correctable(&exec, &s.workload.nest, &s.workload.spec())
                .expect("context builds");
            let z = is_serializable(&exec);
            assert!(
                c || !z,
                "a serializable execution must be correctable (round {round})"
            );
            correctable += c as usize;
            serializable += z as usize;
        }
        table.row(vec![
            entities.to_string(),
            samples.to_string(),
            pct(correctable as f64 / samples as f64),
            pct(serializable as f64 / samples as f64),
            pct((correctable - serializable) as f64 / samples as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_gap_nonnegative() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        for r in 0..t.len() {
            let gap: f64 = t.cell(r, 4).trim_end_matches('%').parse().unwrap();
            assert!(gap >= 0.0, "correctable ⊇ serializable");
        }
    }
}
