//! A3 — Victim-policy ablation: who should die when a cycle is found?
//!
//! The paper leaves the "priority scheme ... to determine which steps
//! should be rolled back" unspecified. This ablation compares the three
//! implemented policies across SGT and both MLA controls on a contended
//! banking workload.

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

use crate::experiments::seeds;
use crate::runner::{run_seeds, ControlKind};
use crate::table::{f2, Table};

/// Runs A3.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A3: victim-policy ablation (contended banking)",
        &["control", "policy", "thru/kt", "aborts", "wasted"],
    );
    let policies = [
        VictimPolicy::Requester,
        VictimPolicy::FewestSteps,
        VictimPolicy::MostSteps,
    ];
    let b = generate(BankingConfig {
        families: 2,
        accounts_per_family: 3,
        transfers: if quick { 12 } else { 24 },
        bank_audits: 1,
        credit_audits: 1,
        arrival_spacing: 1,
        zipf_theta: 0.9,
        ..BankingConfig::default()
    });
    for &policy in &policies {
        for kind in [
            ControlKind::Sgt(policy),
            ControlKind::MlaDetect(policy),
            ControlKind::MlaPrevent(policy),
        ] {
            let agg = run_seeds(&b.workload, kind, &seeds(quick));
            table.row(vec![
                kind.label().to_string(),
                policy.label().to_string(),
                f2(agg.throughput),
                agg.aborts.to_string(),
                f2(agg.wasted * 100.0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a3_covers_the_grid() {
        let t = run(true);
        assert_eq!(t.len(), 9);
    }
}
