//! E4 — Throughput and latency vs. offered load, all controls, banking.
//!
//! The paper's headline open question: "whether new concurrency control
//! algorithms which achieve multilevel atomicity can be made to operate
//! much more efficiently than existing concurrency control algorithms
//! which achieve serializability." Transfers with the phase breakpoint
//! plus audits; offered load scales with the number of concurrently
//! injected transfers.

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

use crate::experiments::seeds;
use crate::runner::{run_seeds, ControlKind};
use crate::table::{f2, Table};

/// Runs E4.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E4: banking throughput/latency vs offered load",
        &[
            "transfers",
            "control",
            "thru/kt",
            "latency",
            "aborts",
            "defers",
        ],
    );
    let loads: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 64] };
    let policy = VictimPolicy::FewestSteps;
    let controls = [
        ControlKind::Serial,
        ControlKind::TwoPl,
        ControlKind::Timestamp,
        ControlKind::Sgt(policy),
        ControlKind::MlaPrevent(policy),
        ControlKind::MlaDetect(policy),
    ];
    for &transfers in loads {
        let b = generate(BankingConfig {
            transfers,
            bank_audits: 1,
            credit_audits: 2,
            arrival_spacing: 2, // dense injection: real concurrency
            ..BankingConfig::default()
        });
        for &kind in &controls {
            let agg = run_seeds(&b.workload, kind, &seeds(quick));
            table.row(vec![
                transfers.to_string(),
                kind.label().to_string(),
                f2(agg.throughput),
                f2(agg.latency),
                agg.aborts.to_string(),
                agg.defers.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_runs_and_mla_prevent_beats_serial() {
        let t = run(true);
        assert_eq!(t.len(), 12);
        // Row 0 = serial, row 4 = mla-prevent at the lightest load.
        let serial: f64 = t.cell(0, 2).parse().unwrap();
        let prevent: f64 = t.cell(4, 2).parse().unwrap();
        assert!(
            prevent >= serial,
            "mla-prevent ({prevent}) should beat serial ({serial})"
        );
    }
}
