//! A4 — incremental vs. full-rebuild closure maintenance.
//!
//! The MLA detector keeps one coherent-closure engine alive across
//! decisions and feeds it deltas; the pre-incremental design recomputed
//! the closure of the whole window per decision. `mla-detect/rebuild`
//! forces that old cost model through the identical decision procedure
//! (`ClosureEngine::force_rebuild` before every step), so any difference
//! is pure maintenance cost: the decisions, and hence the history, are
//! the same by construction.
//!
//! `rows/dec` is the deterministic work measure (closure rows processed
//! per decision); wall-clock is reported alongside. The incremental
//! column's rebuild count stays at the number of genuine shrink events
//! (aborts, compactions) instead of one per decision.

use mla_cc::VictimPolicy;
use mla_workload::banking::{generate, BankingConfig};

use crate::runner::{run_cell, ControlKind};
use crate::table::{f2, Table};

/// Runs A4.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "A4: incremental vs full-rebuild closure maintenance (mla-detect)",
        &[
            "transfers",
            "incr-ms",
            "rebuild-ms",
            "speedup",
            "rows/dec-incr",
            "rows/dec-full",
            "rebuilds-incr",
            "rebuilds-full",
            "edges",
            "same-history",
        ],
    );
    let loads: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 96] };
    let policy = VictimPolicy::FewestSteps;
    for &transfers in loads {
        let b = generate(BankingConfig {
            transfers,
            bank_audits: 1,
            credit_audits: 1,
            arrival_spacing: 2, // dense injection: large live windows
            ..BankingConfig::default()
        });
        let inc = run_cell(&b.workload, ControlKind::MlaDetect(policy), 0xA4);
        let full = run_cell(&b.workload, ControlKind::MlaDetectFullRebuild(policy), 0xA4);
        let same = inc.outcome.execution == full.outcome.execution;
        let mi = &inc.outcome.metrics;
        let mf = &full.outcome.metrics;
        table.row(vec![
            transfers.to_string(),
            f2(inc.wall_seconds * 1e3),
            f2(full.wall_seconds * 1e3),
            f2(if inc.wall_seconds > 0.0 {
                full.wall_seconds / inc.wall_seconds
            } else {
                0.0
            }),
            f2(mi.rows_per_decision()),
            f2(mf.rows_per_decision()),
            mi.decision_cost.rebuilds.to_string(),
            mf.decision_cost.rebuilds.to_string(),
            mi.decision_cost.edges_inserted.to_string(),
            if same { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(same, "forced rebuilds changed the produced history");
        assert!(
            mi.decision_cost.rows_touched < mf.decision_cost.rows_touched,
            "incremental maintenance must do strictly less closure work"
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a4_histories_identical_and_incremental_cheaper() {
        let t = run(true);
        assert_eq!(t.len(), 2);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 9), "yes");
            let inc: f64 = t.cell(r, 4).parse().unwrap();
            let full: f64 = t.cell(r, 5).parse().unwrap();
            assert!(
                inc < full,
                "rows/dec incremental ({inc}) must undercut full rebuild ({full})"
            );
            let rebuilds_full: u64 = t.cell(r, 7).parse().unwrap();
            let rebuilds_inc: u64 = t.cell(r, 6).parse().unwrap();
            assert!(rebuilds_inc < rebuilds_full);
        }
    }
}
