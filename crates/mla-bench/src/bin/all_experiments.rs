//! Runs every experiment (E1-E12, A3) and prints all tables — the data
//! behind EXPERIMENTS.md. Pass `--quick` for the reduced sweeps and
//! `--json <path>` to also write machine-readable results.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let tables = mla_bench::experiments::run_all(quick);
    for table in &tables {
        println!("{}", table.render());
    }
    if let Some(path) = json_path {
        let body: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        let json = format!("[{}]", body.join(","));
        std::fs::write(&path, json).expect("write json results");
        eprintln!("wrote {path}");
    }
}
