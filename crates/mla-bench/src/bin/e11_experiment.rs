//! Harness binary for experiment E11 (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for the reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", mla_bench::experiments::e11::run(quick).render());
}
