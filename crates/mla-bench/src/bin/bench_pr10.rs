//! Fixed-seed PR10 bench runner: the same replay + serve sweep as
//! `bench_pr7`, stamped with the PR10 label so `bench_compare` can diff
//! the two committed artifacts, plus the A8 partial-lattice table (new
//! in this artifact; `bench_compare` matches tables by header, so the
//! extra table is reported as new coverage, never a regression). Writes
//! `BENCH_PR10.json` by default (override with `--json <path>`); pass
//! `--quick` for the reduced sweep.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let mut tables = mla_bench::perf::run_labeled(quick, "PR10");
    tables.push(mla_bench::experiments::a8::run(quick));
    for table in &tables {
        println!("{}", table.render());
    }
    let body: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    std::fs::write(&json_path, format!("[{}]", body.join(","))).expect("write json results");
    eprintln!("wrote {json_path}");
}
