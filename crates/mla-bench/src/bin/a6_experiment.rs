//! Harness binary for ablation A6 (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for the reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", mla_bench::experiments::a6::run(quick).render());
}
