//! Harness binary for ablation A8 (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for the reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", mla_bench::experiments::a8::run(quick).render());
}
