//! Harness binary for experiment E1 (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for the reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", mla_bench::experiments::e1::run(quick).render());
}
