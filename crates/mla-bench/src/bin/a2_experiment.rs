//! Harness binary for ablation A2 (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for the reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", mla_bench::experiments::a2::run(quick).render());
}
