//! Fixed-seed PR7 bench runner: the same replay + serve sweep as
//! `bench_pr6`, stamped with the PR7 label so `bench_compare` can diff
//! the two committed artifacts. Writes `BENCH_PR7.json` by default
//! (override with `--json <path>`); pass `--quick` for the reduced
//! sweep.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let tables = mla_bench::perf::run_labeled(quick, "PR7");
    for table in &tables {
        println!("{}", table.render());
    }
    let body: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    std::fs::write(&json_path, format!("[{}]", body.join(","))).expect("write json results");
    eprintln!("wrote {json_path}");
}
