//! Harness binary for ablation A7 (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for the reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", mla_bench::experiments::a7::run(quick).render());
}
