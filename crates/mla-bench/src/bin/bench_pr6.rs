//! Fixed-seed PR6 bench runner: scheduler replay suites plus the live
//! `mla-serve` throughput row. Prints the tables and writes
//! machine-readable JSON (default `BENCH_PR6.json`; override with
//! `--json <path>`). Pass `--quick` for the reduced sweep.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let tables = mla_bench::perf::run(quick);
    for table in &tables {
        println!("{}", table.render());
    }
    let body: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    std::fs::write(&json_path, format!("[{}]", body.join(","))).expect("write json results");
    eprintln!("wrote {json_path}");
}
