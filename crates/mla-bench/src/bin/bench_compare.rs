//! Perf-trajectory gate: diff two committed bench artifacts and exit
//! nonzero if any matched metric row regressed past the threshold, or
//! if a populated baseline table lost every row (a rename would
//! otherwise walk its metrics past the gate).
//!
//! ```text
//! bench_compare OLD.json NEW.json [--threshold 0.10]
//! ```
//!
//! Exit codes: 0 clean, 1 regression or lost coverage, 2 usage or
//! parse failure.

use mla_bench::compare::{compare, parse_doc};

const USAGE: &str = "bench_compare: flag perf regressions between bench artifacts

USAGE: bench_compare OLD.json NEW.json [--threshold F]

  OLD.json        baseline artifact (previous PR's BENCH_PR*.json)
  NEW.json        current artifact
  --threshold F   fractional regression tolerance   [0.10]
";

fn load(path: &str) -> mla_bench::compare::BenchDoc {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_doc(&src).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 0.10f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad or missing value for --threshold\n\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
            other => positional.push(other.to_string()),
        }
    }
    let [old_path, new_path] = positional.as_slice() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };

    let old = load(old_path);
    let new = load(new_path);
    let report = compare(&old, &new, threshold);

    for note in &report.unmatched {
        println!("note: {note}");
    }
    println!(
        "compared {} metric cells at threshold {:.0}%",
        report.compared,
        threshold * 100.0
    );
    if report.passed() {
        println!("PASS: no regression");
    } else {
        for c in &report.coverage_failures {
            println!("COVERAGE LOST: {c}");
        }
        for r in &report.regressions {
            println!("REGRESSION: {r}");
        }
        eprintln!(
            "{} regression(s) past {:.0}%, {} table(s) with baseline coverage lost",
            report.regressions.len(),
            threshold * 100.0,
            report.coverage_failures.len()
        );
        std::process::exit(1);
    }
}
