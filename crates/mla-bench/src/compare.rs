//! Perf-trajectory comparison: diff two committed bench JSON artifacts
//! (`BENCH_PR*.json`, the array-of-tables shape [`Table::to_json`]
//! emits) and flag regressions, making the perf trajectory enforceable
//! in CI rather than archival.
//!
//! Tables are matched by *header signature*, not title (titles carry
//! the PR stamp); rows are keyed by their non-metric columns. Metric
//! columns carry a direction: wall-clock and latency regress upward,
//! throughput regresses downward. Deterministic counter columns
//! (commits, aborts, defers) are part of the row identity only —
//! seeded replays pin them exactly elsewhere; here a changed counter
//! shows up as an added/removed row, which is reported but does not
//! fail the gate.
//!
//! [`Table::to_json`]: crate::table::Table::to_json

use std::collections::HashMap;

/// One parsed bench table.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchTable {
    /// Table title (informational only).
    pub title: String,
    /// Column names; the matching signature.
    pub header: Vec<String>,
    /// Stringified cells.
    pub rows: Vec<Vec<String>>,
}

/// A parsed artifact: the JSON array `bench_pr*` writes.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    /// Tables, in file order.
    pub tables: Vec<BenchTable>,
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the artifact subset: arrays, objects, strings
// (with the escapes `esc()` produces). No registry JSON crate in the
// build environment, same as the writer side.

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl<'a> Json<'a> {
    fn new(src: &'a str) -> Self {
        Json {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("json byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            _ => Err(self.error("expected string, array, or object")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // input is a &str so sequences are valid.
                    let start = self.pos;
                    let len = if b < 0x80 {
                        1
                    } else if b < 0xE0 {
                        2
                    } else if b < 0xF0 {
                        3
                    } else {
                        4
                    };
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }
}

fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

fn strings(v: &Value, what: &str) -> Result<Vec<String>, String> {
    match v {
        Value::Arr(items) => items
            .iter()
            .map(|i| match i {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(format!("{what}: expected string")),
            })
            .collect(),
        _ => Err(format!("{what}: expected array")),
    }
}

/// Parses a `BENCH_PR*.json` artifact.
pub fn parse_doc(src: &str) -> Result<BenchDoc, String> {
    let mut json = Json::new(src);
    let Value::Arr(items) = json.value()? else {
        return Err("artifact must be a JSON array of tables".to_string());
    };
    let mut tables = Vec::with_capacity(items.len());
    for item in &items {
        let Value::Obj(obj) = item else {
            return Err("each table must be a JSON object".to_string());
        };
        let Value::Str(title) = field(obj, "title")? else {
            return Err("title must be a string".to_string());
        };
        let header = strings(field(obj, "header")?, "header")?;
        let rows = match field(obj, "rows")? {
            Value::Arr(rows) => rows
                .iter()
                .map(|r| strings(r, "row"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("rows must be an array".to_string()),
        };
        for r in &rows {
            if r.len() != header.len() {
                return Err(format!(
                    "row arity {} != header arity {}",
                    r.len(),
                    header.len()
                ));
            }
        }
        tables.push(BenchTable {
            title: title.clone(),
            header,
            rows,
        });
    }
    Ok(BenchDoc { tables })
}

// ---------------------------------------------------------------------
// Comparison.

/// Which way a metric column regresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is worse (wall-clock, latency).
    LowerIsBetter,
    /// Smaller is worse (throughput).
    HigherIsBetter,
}

/// The known metric columns. Anything else is row identity.
pub fn metric_direction(column: &str) -> Option<Direction> {
    match column {
        "wall-ms" | "drain-ms" | "p50-us" | "p95-us" | "p99-us" => Some(Direction::LowerIsBetter),
        "thru/kt" | "txn/s" => Some(Direction::HigherIsBetter),
        _ => None,
    }
}

/// One metric regression past the threshold.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Header signature of the table (joined by `|`).
    pub table: String,
    /// Row key (non-metric columns joined by `|`).
    pub row: String,
    /// Metric column name.
    pub column: String,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// `new / old`.
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {} -> {} ({:+.1}%)",
            self.table,
            self.row,
            self.column,
            self.old,
            self.new,
            (self.ratio - 1.0) * 100.0
        )
    }
}

/// The full diff outcome.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Metric cells compared.
    pub compared: usize,
    /// Regressions past the threshold.
    pub regressions: Vec<Regression>,
    /// *Some* row keys present on only one side, or tables new in this
    /// artifact — reported, not failed (a PR may add rows or tables).
    pub unmatched: Vec<String>,
    /// Baseline coverage lost wholesale: a non-empty old table with no
    /// counterpart, or a matched table none of whose baseline rows
    /// matched. Warning here would let a renamed table (or renamed row
    /// keys) slip every metric past the gate, so these fail it.
    pub coverage_failures: Vec<String>,
}

impl CompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.coverage_failures.is_empty()
    }
}

fn row_key(header: &[String], row: &[String]) -> String {
    header
        .iter()
        .zip(row)
        .filter(|(h, _)| metric_direction(h).is_none())
        .map(|(_, c)| c.as_str())
        .collect::<Vec<_>>()
        .join("|")
}

/// Values below this are noise floors, not baselines: a 0.00 ms cell
/// cannot meaningfully regress by ratio.
const MIN_BASE: f64 = 0.05;

/// Diffs `new` against the `old` baseline: any matched metric cell
/// worse by more than `threshold` (fractional, e.g. `0.10`) is a
/// regression.
pub fn compare(old: &BenchDoc, new: &BenchDoc, threshold: f64) -> CompareReport {
    let mut report = CompareReport::default();
    let mut old_by_sig: HashMap<String, &BenchTable> = HashMap::new();
    for t in &old.tables {
        old_by_sig.insert(t.header.join("|"), t);
    }
    let mut new_sigs: Vec<String> = Vec::new();
    for t in &new.tables {
        new_sigs.push(t.header.join("|"));
    }
    for (sig, t) in old.tables.iter().map(|t| (t.header.join("|"), t)) {
        if !new_sigs.contains(&sig) {
            let note = format!("table gone: {} ({})", t.title, sig);
            if t.rows.is_empty() {
                report.unmatched.push(note);
            } else {
                report.coverage_failures.push(note);
            }
        }
    }
    for new_table in &new.tables {
        let sig = new_table.header.join("|");
        let Some(old_table) = old_by_sig.get(&sig) else {
            report
                .unmatched
                .push(format!("table new: {} ({})", new_table.title, sig));
            continue;
        };
        let mut old_rows: HashMap<String, &Vec<String>> = HashMap::new();
        for r in &old_table.rows {
            old_rows.insert(row_key(&old_table.header, r), r);
        }
        let mut seen: Vec<String> = Vec::new();
        let mut matched_rows = 0usize;
        for r in &new_table.rows {
            let key = row_key(&new_table.header, r);
            seen.push(key.clone());
            let Some(old_row) = old_rows.get(&key) else {
                report.unmatched.push(format!("row new: [{key}] in {sig}"));
                continue;
            };
            matched_rows += 1;
            for (c, h) in new_table.header.iter().enumerate() {
                let Some(direction) = metric_direction(h) else {
                    continue;
                };
                let (Ok(old_v), Ok(new_v)) = (old_row[c].parse::<f64>(), r[c].parse::<f64>())
                else {
                    continue;
                };
                if old_v < MIN_BASE {
                    continue;
                }
                report.compared += 1;
                let ratio = new_v / old_v;
                let regressed = match direction {
                    Direction::LowerIsBetter => ratio > 1.0 + threshold,
                    Direction::HigherIsBetter => ratio < 1.0 - threshold,
                };
                if regressed {
                    report.regressions.push(Regression {
                        table: sig.clone(),
                        row: key.clone(),
                        column: h.clone(),
                        old: old_v,
                        new: new_v,
                        ratio,
                    });
                }
            }
        }
        for key in old_rows.keys() {
            if !seen.contains(key) {
                report.unmatched.push(format!("row gone: [{key}] in {sig}"));
            }
        }
        if matched_rows == 0 && !old_table.rows.is_empty() {
            report.coverage_failures.push(format!(
                "no baseline row matched: {} ({sig})",
                old_table.title
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn doc(wall: &str, thru: &str) -> BenchDoc {
        let mut t = Table::new("BENCH PRx: demo", &["workload", "wall-ms", "thru/kt"]);
        t.row(vec!["banking".into(), wall.into(), thru.into()]);
        parse_doc(&format!("[{}]", t.to_json())).unwrap()
    }

    #[test]
    fn parses_the_writer_shape() {
        let mut t = Table::new("ti\"tle\nx", &["a", "wall-ms"]);
        t.row(vec!["r\\1".into(), "3.14".into()]);
        let doc = parse_doc(&format!("[{}]", t.to_json())).unwrap();
        assert_eq!(doc.tables.len(), 1);
        assert_eq!(doc.tables[0].title, "ti\"tle\nx");
        assert_eq!(doc.tables[0].rows[0], vec!["r\\1", "3.14"]);
    }

    #[test]
    fn within_threshold_passes() {
        let report = compare(&doc("10.0", "50.0"), &doc("10.9", "46.0"), 0.10);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn slow_wall_fails() {
        let report = compare(&doc("10.0", "50.0"), &doc("11.5", "50.0"), 0.10);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].column, "wall-ms");
    }

    #[test]
    fn throughput_drop_fails_but_gain_passes() {
        let drop = compare(&doc("10.0", "50.0"), &doc("10.0", "44.0"), 0.10);
        assert_eq!(drop.regressions.len(), 1);
        assert_eq!(drop.regressions[0].column, "thru/kt");
        let gain = compare(&doc("10.0", "50.0"), &doc("10.0", "80.0"), 0.10);
        assert!(gain.passed());
    }

    /// The warn-vs-fail boundary: losing *some* rows warns, losing
    /// *every* row of a populated baseline table fails.
    #[test]
    fn partially_unmatched_rows_warn_not_fail() {
        let old = doc("10.0", "50.0");
        let mut t = Table::new("BENCH PRy: demo", &["workload", "wall-ms", "thru/kt"]);
        t.row(vec!["banking".into(), "10.0".into(), "50.0".into()]);
        t.row(vec!["cad".into(), "99.0".into(), "1.0".into()]);
        let new = parse_doc(&format!("[{}]", t.to_json())).unwrap();
        let report = compare(&old, &new, 0.10);
        assert!(report.passed(), "{:?}", report.coverage_failures);
        assert_eq!(report.compared, 2);
        assert_eq!(report.unmatched.len(), 1, "{:?}", report.unmatched);
    }

    #[test]
    fn fully_unmatched_rows_fail_the_gate() {
        let old = doc("10.0", "50.0");
        let mut t = Table::new("BENCH PRy: demo", &["workload", "wall-ms", "thru/kt"]);
        t.row(vec!["cad".into(), "99.0".into(), "1.0".into()]);
        let new = parse_doc(&format!("[{}]", t.to_json())).unwrap();
        let report = compare(&old, &new, 0.10);
        assert!(!report.passed(), "renamed rows slipped past the gate");
        assert_eq!(report.coverage_failures.len(), 1);
        assert!(
            report.coverage_failures[0].contains("no baseline row matched"),
            "{:?}",
            report.coverage_failures
        );
        // The per-row notes are still reported alongside the failure.
        assert_eq!(report.unmatched.len(), 2, "{:?}", report.unmatched);
    }

    #[test]
    fn renamed_table_fails_the_gate() {
        let old = doc("10.0", "50.0");
        let mut t = Table::new("BENCH PRy: demo", &["scenario", "wall-ms", "thru/kt"]);
        t.row(vec!["banking".into(), "10.0".into(), "50.0".into()]);
        let new = parse_doc(&format!("[{}]", t.to_json())).unwrap();
        let report = compare(&old, &new, 0.10);
        assert!(!report.passed(), "renamed table slipped past the gate");
        assert_eq!(report.compared, 0);
        assert_eq!(report.coverage_failures.len(), 1);
        assert!(
            report.coverage_failures[0].starts_with("table gone:"),
            "{:?}",
            report.coverage_failures
        );
        // The new-side table is only a note: a PR may add tables.
        assert_eq!(report.unmatched.len(), 1, "{:?}", report.unmatched);
    }

    #[test]
    fn empty_or_added_tables_warn_not_fail() {
        let empty = Table::new("BENCH PRx: placeholder", &["workload", "wall-ms"]);
        let old = parse_doc(&format!("[{}]", empty.to_json())).unwrap();
        let report = compare(&old, &doc("10.0", "50.0"), 0.10);
        assert!(report.passed(), "{:?}", report.coverage_failures);
        assert_eq!(report.unmatched.len(), 2, "{:?}", report.unmatched);
    }

    #[test]
    fn zero_baselines_are_skipped() {
        let report = compare(&doc("0.00", "50.0"), &doc("5.00", "50.0"), 0.10);
        assert!(report.passed());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn titles_do_not_gate_matching() {
        let mut a = Table::new("BENCH PR6: demo", &["w", "wall-ms"]);
        a.row(vec!["x".into(), "10.0".into()]);
        let mut b = Table::new("BENCH PR7: demo", &["w", "wall-ms"]);
        b.row(vec!["x".into(), "10.0".into()]);
        let old = parse_doc(&format!("[{}]", a.to_json())).unwrap();
        let new = parse_doc(&format!("[{}]", b.to_json())).unwrap();
        let report = compare(&old, &new, 0.10);
        assert!(report.passed());
        assert_eq!(report.compared, 1);
        assert!(report.unmatched.is_empty());
    }
}
