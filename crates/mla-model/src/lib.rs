//! The asynchronous process/variable model of §3 of
//! *Multilevel Atomicity* (Lynch, 1982).
//!
//! The paper models an application database as a centralized concurrent
//! system of **transactions** (processes / nondeterministic automata)
//! acting on **entities** (variables), together with a set `C` of *correct*
//! interleavings. This crate implements that model directly:
//!
//! * [`ids`] — `TxnId`, `EntityId`, `Value` newtypes.
//! * [`step::Step`] — one atomic access: a transaction touches one entity,
//!   observing its value and possibly replacing it (general read-modify-
//!   write steps; pure reads and blind writes are the special cases the
//!   paper notes are "permissible special cases").
//! * [`execution::Execution`] — a totally ordered set of steps, with the
//!   dependency partial order `<=_e` (§3.1), execution equivalence
//!   (`<=_e` identity), and enumeration of all equivalent executions
//!   (the linear extensions of `<=_e`) — the brute-force oracle against
//!   which `mla-core`'s Theorem 2 decision procedure is property-tested.
//! * [`program`] — transactions as automata ([`program::Program`]): local
//!   state, conditional branching on observed values, plus [`program::System`]
//!   which validates executions against the consistency requirements of
//!   §3.1 and *generates* executions from interleaving schedules.
//! * [`appdb`] — application databases `(S, C)`: a [`appdb::Criterion`]
//!   is the set `C`; [`appdb::is_correctable_by_enumeration`] decides
//!   correctability by trying every equivalent execution (tiny inputs
//!   only; the whole point of the paper's Theorem 2 is to avoid this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appdb;
pub mod execution;
pub mod ids;
pub mod program;
pub mod step;

pub use appdb::{Criterion, SerialCriterion};
pub use execution::Execution;
pub use ids::{EntityId, TxnId, Value};
pub use program::{LocalState, Program, System};
pub use step::Step;
