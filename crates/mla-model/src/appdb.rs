//! Application databases `(S, C)` and correctability (§3.2).

use std::ops::ControlFlow;

use crate::execution::Execution;
use crate::program::System;

/// A correctness criterion: the set `C` of correct interleavings of an
/// application database, given intensionally as a membership predicate.
pub trait Criterion {
    /// Whether `e` is a correct execution (`e ∈ C`).
    fn is_correct(&self, e: &Execution) -> bool;

    /// A short name for reports.
    fn name(&self) -> &'static str {
        "criterion"
    }
}

/// The classical criterion: `C` = the serial executions. The paper notes
/// that with this `C`, "the correctable executions are just the usual
/// serializable executions".
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialCriterion;

impl Criterion for SerialCriterion {
    fn is_correct(&self, e: &Execution) -> bool {
        e.is_serial()
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

/// Decides correctability by brute force: `e` is correctable iff some
/// execution equivalent to `e` (some linear extension of `<=_e`) is in `C`.
///
/// Exponential in the worst case — usable only on small executions. This
/// is the semantic ground truth against which `mla-core`'s Theorem 2
/// decision procedure is property-tested.
pub fn is_correctable_by_enumeration(e: &Execution, criterion: &dyn Criterion) -> bool {
    e.for_each_equivalent(|candidate| {
        if criterion.is_correct(candidate) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })
    .is_some()
}

/// An application database: a system of transactions together with its
/// correctness criterion (§3.2's pair `(S, C)`).
pub struct ApplicationDatabase<C: Criterion> {
    /// The system `S` of transactions and entities.
    pub system: System,
    /// The criterion defining the correct executions `C`.
    pub criterion: C,
}

impl<C: Criterion> ApplicationDatabase<C> {
    /// Bundles a system with its criterion.
    pub fn new(system: System, criterion: C) -> Self {
        ApplicationDatabase { system, criterion }
    }

    /// Whether `e` is a *correct* execution: valid for the system and a
    /// member of `C`.
    pub fn is_correct(&self, e: &Execution) -> bool {
        self.system.validate(e).is_ok() && self.criterion.is_correct(e)
    }

    /// Whether `e` is *correctable*: valid and equivalent to some member
    /// of `C`. Brute force; see [`is_correctable_by_enumeration`].
    pub fn is_correctable(&self, e: &Execution) -> bool {
        self.system.validate(e).is_ok() && is_correctable_by_enumeration(e, &self.criterion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EntityId, TxnId};
    use crate::program::{ScriptOp::*, ScriptProgram};

    fn two_disjoint_transfers() -> System {
        System::new(
            vec![
                Box::new(ScriptProgram::new(vec![
                    Add(EntityId(0), -10),
                    Add(EntityId(1), 10),
                ])),
                Box::new(ScriptProgram::new(vec![
                    Add(EntityId(2), -5),
                    Add(EntityId(3), 5),
                ])),
            ],
            [(EntityId(0), 100), (EntityId(2), 50)],
        )
    }

    fn two_conflicting_counters() -> System {
        // Both transactions read-modify-write x0 then x1.
        System::new(
            vec![
                Box::new(ScriptProgram::new(vec![
                    Add(EntityId(0), 1),
                    Add(EntityId(1), 1),
                ])),
                Box::new(ScriptProgram::new(vec![
                    Add(EntityId(0), 1),
                    Add(EntityId(1), 1),
                ])),
            ],
            [],
        )
    }

    #[test]
    fn disjoint_interleaving_is_serializable() {
        let sys = two_disjoint_transfers();
        let e = sys
            .run_schedule(&[TxnId(0), TxnId(1), TxnId(0), TxnId(1)])
            .unwrap();
        assert!(!e.is_serial());
        assert!(is_correctable_by_enumeration(&e, &SerialCriterion));
    }

    #[test]
    fn conflicting_interleaving_is_not_serializable() {
        let sys = two_conflicting_counters();
        // t0 hits x0 first but x1 second: classic non-serializable weave
        // requires opposing conflict orders. Schedule: t0@x0, t1@x0, t1@x1,
        // t0@x1 — t0 before t1 on x0, t1 before t0 on x1.
        let e = sys
            .run_schedule(&[TxnId(0), TxnId(1), TxnId(1), TxnId(0)])
            .unwrap();
        assert!(!is_correctable_by_enumeration(&e, &SerialCriterion));
    }

    #[test]
    fn aligned_conflicts_are_serializable() {
        let sys = two_conflicting_counters();
        // Same conflict order on both entities: t0 before t1 everywhere.
        let e = sys
            .run_schedule(&[TxnId(0), TxnId(0), TxnId(1), TxnId(1)])
            .unwrap();
        assert!(e.is_serial());
        assert!(is_correctable_by_enumeration(&e, &SerialCriterion));
    }

    #[test]
    fn appdb_correct_vs_correctable() {
        let sys = two_disjoint_transfers();
        let db = ApplicationDatabase::new(sys, SerialCriterion);
        let e = db
            .system
            .run_schedule(&[TxnId(0), TxnId(1), TxnId(0), TxnId(1)])
            .unwrap();
        assert!(!db.is_correct(&e), "interleaved, so not in C");
        assert!(db.is_correctable(&e), "equivalent to a serial execution");
    }

    #[test]
    fn invalid_execution_is_not_correctable() {
        let sys = two_disjoint_transfers();
        let db = ApplicationDatabase::new(sys, SerialCriterion);
        let mut steps = db
            .system
            .run_schedule(&[TxnId(0), TxnId(0)])
            .unwrap()
            .steps()
            .to_vec();
        steps[0].observed = 9999;
        let e = Execution::new(steps).unwrap();
        assert!(!db.is_correct(&e));
        assert!(!db.is_correctable(&e));
    }

    #[test]
    fn empty_execution_is_correct() {
        let db = ApplicationDatabase::new(two_disjoint_transfers(), SerialCriterion);
        assert!(db.is_correct(&Execution::empty()));
        assert!(db.is_correctable(&Execution::empty()));
    }
}
