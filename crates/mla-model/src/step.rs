//! Atomic execution steps.

use crate::ids::{EntityId, TxnId, Value};

/// One atomic execution step (§3.1): transaction `txn` performs its
/// `seq`-th access, touching `entity`, beginning with the entity holding
/// `observed` and leaving it holding `wrote`.
///
/// This is the paper's fully general access — "arbitrary accesses to
/// entities, not necessarily just reading or writing steps". A pure read
/// has `wrote == observed`; a blind write ignores `observed` when choosing
/// `wrote` but still records it (the model requires every step to begin
/// with the variable's current value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// The transaction this step belongs to.
    pub txn: TxnId,
    /// Position of this step within its transaction (0-based). The pair
    /// `(txn, seq)` identifies the step across all reorderings of an
    /// execution — it is the paper's formal element "(i, a_i)".
    pub seq: u32,
    /// The entity accessed.
    pub entity: EntityId,
    /// Value of the entity when the step began.
    pub observed: Value,
    /// Value of the entity when the step finished.
    pub wrote: Value,
}

impl Step {
    /// Whether the step left the entity unchanged (a pure read).
    pub fn is_read(&self) -> bool {
        self.observed == self.wrote
    }

    /// Stable identity of the step across reorderings.
    pub fn key(&self) -> (TxnId, u32) {
        (self.txn, self.seq)
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}#{}@{}[{}->{}]",
            self.txn, self.seq, self.entity, self.observed, self.wrote
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(txn: u32, seq: u32, entity: u32, observed: Value, wrote: Value) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed,
            wrote,
        }
    }

    #[test]
    fn read_detection() {
        assert!(step(0, 0, 1, 5, 5).is_read());
        assert!(!step(0, 0, 1, 5, 6).is_read());
    }

    #[test]
    fn key_ignores_effects() {
        let a = step(2, 3, 1, 5, 6);
        let b = step(2, 3, 9, 0, 0);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(step(1, 2, 3, 4, 5).to_string(), "t1#2@x3[4->5]");
    }
}
