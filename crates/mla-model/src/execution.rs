//! Executions and the dependency partial order `<=_e` (§3.1).

use std::collections::HashMap;
use std::ops::ControlFlow;

use mla_graph::DiGraph;

use crate::ids::{EntityId, TxnId};
use crate::step::Step;

/// A (finite) execution: a totally ordered sequence of steps.
///
/// Invariants enforced at construction:
/// * within each transaction, step sequence numbers appear in order
///   `0, 1, 2, ...` (each transaction's subsequence is a prefix of its
///   program run);
/// * per-entity value chains are *not* enforced here — that is the
///   [`crate::program::System::validate`] consistency check, because an
///   `Execution` is also used to represent candidate reorderings whose
///   value chains are exactly what validation inspects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Execution {
    steps: Vec<Step>,
}

/// Errors from [`Execution::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutionError {
    /// A transaction's sequence numbers were not `0, 1, 2, ...` in order.
    BadSequence {
        /// The offending transaction.
        txn: TxnId,
        /// The sequence number that was expected next.
        expected: u32,
        /// The sequence number found.
        found: u32,
    },
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::BadSequence {
                txn,
                expected,
                found,
            } => write!(
                f,
                "transaction {txn}: expected step seq {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for ExecutionError {}

impl Execution {
    /// Builds an execution, checking per-transaction sequence contiguity.
    pub fn new(steps: Vec<Step>) -> Result<Self, ExecutionError> {
        let mut next_seq: HashMap<TxnId, u32> = HashMap::new();
        for s in &steps {
            let expected = next_seq.entry(s.txn).or_insert(0);
            if s.seq != *expected {
                return Err(ExecutionError::BadSequence {
                    txn: s.txn,
                    expected: *expected,
                    found: s.seq,
                });
            }
            *expected += 1;
        }
        Ok(Execution { steps })
    }

    /// The empty execution.
    pub fn empty() -> Self {
        Execution { steps: Vec::new() }
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the execution has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Transactions in order of first appearance.
    pub fn txns(&self) -> Vec<TxnId> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.txn) {
                seen.push(s.txn);
            }
        }
        seen
    }

    /// Global step indices belonging to `txn`, in execution order (which,
    /// by the construction invariant, is also `seq` order).
    pub fn txn_steps(&self, txn: TxnId) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.txn == txn)
            .map(|(i, _)| i)
            .collect()
    }

    /// Global step indices accessing `entity`, in execution order.
    pub fn entity_steps(&self, entity: EntityId) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.entity == entity)
            .map(|(i, _)| i)
            .collect()
    }

    /// The dependency graph generating `<=_e`: an edge from each step to
    /// the next step of the same transaction and to the next step touching
    /// the same entity. The reflexive-transitive closure of this graph is
    /// exactly the paper's dependency partial order.
    pub fn dependency_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.steps.len());
        let mut last_txn: HashMap<TxnId, usize> = HashMap::new();
        let mut last_entity: HashMap<EntityId, usize> = HashMap::new();
        for (i, s) in self.steps.iter().enumerate() {
            if let Some(&p) = last_txn.get(&s.txn) {
                g.add_edge_unique(p as u32, i as u32);
            }
            if let Some(&p) = last_entity.get(&s.entity) {
                g.add_edge_unique(p as u32, i as u32);
            }
            last_txn.insert(s.txn, i);
            last_entity.insert(s.entity, i);
        }
        g
    }

    /// Whether `<=_e` orders step `i` before step `j` (strictly).
    /// Quadratic helper for tests and small inputs.
    pub fn depends(&self, i: usize, j: usize) -> bool {
        mla_graph::reach::reaches(&self.dependency_graph(), i as u32, j as u32)
    }

    /// Whether every transaction's steps are contiguous — the paper's
    /// *serial* executions (all breakpoint interleaving aside, this is the
    /// `C` of classical serializability).
    pub fn is_serial(&self) -> bool {
        let mut finished: Vec<TxnId> = Vec::new();
        let mut current: Option<TxnId> = None;
        for s in &self.steps {
            if current != Some(s.txn) {
                if finished.contains(&s.txn) {
                    return false;
                }
                if let Some(prev) = current {
                    finished.push(prev);
                }
                current = Some(s.txn);
            }
        }
        true
    }

    /// Execution equivalence (§3.1): `e` and `e'` are equivalent iff
    /// `<=_e` is identical to `<=_e'`.
    ///
    /// Because the dependency order is generated by the per-transaction and
    /// per-entity subsequences, two executions over the same step set are
    /// equivalent iff those subsequences coincide. (Per-transaction order
    /// is forced by sequence numbers, so only per-entity order and the
    /// step sets need checking.)
    pub fn equivalent(&self, other: &Execution) -> bool {
        if self.steps.len() != other.steps.len() {
            return false;
        }
        // Same step set.
        let mut mine: Vec<&Step> = self.steps.iter().collect();
        let mut theirs: Vec<&Step> = other.steps.iter().collect();
        let by_key = |s: &&Step| (s.txn, s.seq);
        mine.sort_by_key(by_key);
        theirs.sort_by_key(by_key);
        if mine != theirs {
            return false;
        }
        // Same per-entity access sequences.
        let seq_of = |e: &Execution| {
            let mut m: HashMap<EntityId, Vec<(TxnId, u32)>> = HashMap::new();
            for s in &e.steps {
                m.entry(s.entity).or_default().push(s.key());
            }
            m
        };
        seq_of(self) == seq_of(other)
    }

    /// Enumerates every execution equivalent to `self` (every linear
    /// extension of `<=_e`), invoking `f` on each. `f` may stop the
    /// enumeration early by returning [`ControlFlow::Break`].
    ///
    /// The number of linear extensions is exponential in the worst case —
    /// this is the brute-force baseline that Theorem 2 renders unnecessary,
    /// retained as a test oracle and for the E-series experiments' tiny
    /// cross-validation runs.
    pub fn for_each_equivalent<B>(
        &self,
        mut f: impl FnMut(&Execution) -> ControlFlow<B>,
    ) -> Option<B> {
        let n = self.steps.len();
        let g = self.dependency_graph();
        let mut in_deg: Vec<usize> = g.in_degrees();
        let mut picked = vec![false; n];
        let mut prefix: Vec<Step> = Vec::with_capacity(n);
        self.extend_rec(&g, &mut in_deg, &mut picked, &mut prefix, &mut f)
    }

    fn extend_rec<B>(
        &self,
        g: &DiGraph,
        in_deg: &mut Vec<usize>,
        picked: &mut Vec<bool>,
        prefix: &mut Vec<Step>,
        f: &mut impl FnMut(&Execution) -> ControlFlow<B>,
    ) -> Option<B> {
        let n = self.steps.len();
        if prefix.len() == n {
            let candidate = Execution {
                steps: prefix.clone(),
            };
            return match f(&candidate) {
                ControlFlow::Break(b) => Some(b),
                ControlFlow::Continue(()) => None,
            };
        }
        for i in 0..n {
            if picked[i] || in_deg[i] > 0 {
                continue;
            }
            picked[i] = true;
            prefix.push(self.steps[i]);
            for &w in g.successors(i as u32) {
                in_deg[w as usize] -= 1;
            }
            let out = self.extend_rec(g, in_deg, picked, prefix, f);
            for &w in g.successors(i as u32) {
                in_deg[w as usize] += 1;
            }
            prefix.pop();
            picked[i] = false;
            if out.is_some() {
                return out;
            }
        }
        None
    }

    /// Collects all equivalent executions. Test helper; see
    /// [`Execution::for_each_equivalent`] for the streaming form.
    pub fn equivalents(&self) -> Vec<Execution> {
        let mut out = Vec::new();
        self.for_each_equivalent::<()>(|e| {
            out.push(e.clone());
            ControlFlow::Continue(())
        });
        out
    }
}

impl std::fmt::Display for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for s in &self.steps {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Value;

    pub(crate) fn step(txn: u32, seq: u32, entity: u32, observed: Value, wrote: Value) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed,
            wrote,
        }
    }

    /// Two transfer transactions interleaved on disjoint entities.
    fn interleaved_disjoint() -> Execution {
        Execution::new(vec![
            step(0, 0, 0, 10, 0),
            step(1, 0, 2, 5, 0),
            step(0, 1, 1, 0, 10),
            step(1, 1, 3, 0, 5),
        ])
        .unwrap()
    }

    #[test]
    fn sequence_contiguity_enforced() {
        let err = Execution::new(vec![step(0, 1, 0, 0, 0)]).unwrap_err();
        assert_eq!(
            err,
            ExecutionError::BadSequence {
                txn: TxnId(0),
                expected: 0,
                found: 1
            }
        );
        assert!(Execution::new(vec![
            step(0, 0, 0, 0, 0),
            step(1, 0, 0, 0, 0),
            step(0, 1, 0, 0, 0)
        ])
        .is_ok());
    }

    #[test]
    fn dependency_graph_edges() {
        let e = interleaved_disjoint();
        let g = e.dependency_graph();
        // Only intra-transaction edges: entities are disjoint.
        assert!(g.has_edge(0, 2)); // t0 seq0 -> t0 seq1
        assert!(g.has_edge(1, 3)); // t1 seq0 -> t1 seq1
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn dependency_includes_entity_conflicts() {
        let e = Execution::new(vec![
            step(0, 0, 7, 0, 1),
            step(1, 0, 7, 1, 2),
            step(0, 1, 8, 0, 0),
        ])
        .unwrap();
        let g = e.dependency_graph();
        assert!(g.has_edge(0, 1)); // same entity 7
        assert!(g.has_edge(0, 2)); // same transaction
        assert!(!g.has_edge(1, 2));
        assert!(e.depends(0, 1));
        assert!(!e.depends(1, 2));
    }

    #[test]
    fn serial_detection() {
        let serial = Execution::new(vec![
            step(0, 0, 0, 0, 0),
            step(0, 1, 1, 0, 0),
            step(1, 0, 0, 0, 0),
        ])
        .unwrap();
        assert!(serial.is_serial());
        assert!(!interleaved_disjoint().is_serial());
        assert!(Execution::empty().is_serial());
    }

    #[test]
    fn serial_rejects_revisit() {
        // t0, then t1, then t0 again.
        let e = Execution::new(vec![
            step(0, 0, 0, 0, 0),
            step(1, 0, 1, 0, 0),
            step(0, 1, 2, 0, 0),
        ])
        .unwrap();
        assert!(!e.is_serial());
    }

    #[test]
    fn equivalence_is_dependency_identity() {
        let e = interleaved_disjoint();
        // Swap the two middle steps: no dependency crosses them.
        let e2 = Execution::new(vec![e.steps[0], e.steps[2], e.steps[1], e.steps[3]]).unwrap();
        assert!(e.equivalent(&e2));

        // An execution with the same steps but reordered entity access is
        // NOT equivalent.
        let conflicting = Execution::new(vec![step(0, 0, 7, 0, 1), step(1, 0, 7, 1, 2)]).unwrap();
        let swapped = Execution::new(vec![step(1, 0, 7, 1, 2), step(0, 0, 7, 0, 1)]).unwrap();
        assert!(!conflicting.equivalent(&swapped));
        assert!(conflicting.equivalent(&conflicting));
    }

    #[test]
    fn equivalence_requires_same_steps() {
        let a = Execution::new(vec![step(0, 0, 0, 0, 1)]).unwrap();
        let b = Execution::new(vec![step(0, 0, 0, 0, 2)]).unwrap();
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn equivalents_of_disjoint_interleaving() {
        let e = interleaved_disjoint();
        let all = e.equivalents();
        // Two chains of length 2 with no cross dependencies: C(4,2) = 6
        // linear extensions.
        assert_eq!(all.len(), 6);
        for e2 in &all {
            assert!(e.equivalent(e2), "enumerated non-equivalent execution");
        }
        // All distinct.
        for i in 0..all.len() {
            for j in 0..i {
                assert_ne!(all[i], all[j]);
            }
        }
        // Exactly two of them are serial (t0;t1 and t1;t0).
        assert_eq!(all.iter().filter(|e| e.is_serial()).count(), 2);
    }

    #[test]
    fn equivalents_of_fully_conflicting_is_singleton() {
        let e = Execution::new(vec![
            step(0, 0, 7, 0, 1),
            step(1, 0, 7, 1, 2),
            step(2, 0, 7, 2, 3),
        ])
        .unwrap();
        assert_eq!(e.equivalents().len(), 1);
    }

    #[test]
    fn for_each_equivalent_early_exit() {
        let e = interleaved_disjoint();
        let mut count = 0;
        let found = e.for_each_equivalent(|_| {
            count += 1;
            if count == 3 {
                ControlFlow::Break("stopped")
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(found, Some("stopped"));
        assert_eq!(count, 3);
    }

    #[test]
    fn txn_and_entity_views() {
        let e = interleaved_disjoint();
        assert_eq!(e.txns(), vec![TxnId(0), TxnId(1)]);
        assert_eq!(e.txn_steps(TxnId(1)), vec![1, 3]);
        assert_eq!(e.entity_steps(EntityId(2)), vec![1]);
        assert!(e.entity_steps(EntityId(9)).is_empty());
    }

    #[test]
    fn empty_execution() {
        let e = Execution::empty();
        assert!(e.is_empty());
        assert_eq!(e.equivalents().len(), 1);
        assert!(e.equivalent(&Execution::empty()));
    }
}
