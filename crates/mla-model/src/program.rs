//! Transactions as automata, and systems of transactions (§3.1).
//!
//! A transaction "can rely on its memory of previous processing to
//! determine its later processing" — it is an automaton whose local state
//! persists across steps, and whose next access may depend on every value
//! observed so far (the paper's conditional branching). [`Program`] is
//! that automaton; [`System`] bundles programs with entity initial values
//! and implements the §3.1 consistency requirements: replay-validation of
//! executions and generation of executions from interleaving schedules.

use std::collections::HashMap;

use crate::execution::Execution;
use crate::ids::{EntityId, TxnId, Value};
use crate::step::Step;

/// Local state of a transaction automaton: a program counter plus a small
/// register file. Programs are free to encode anything they like in the
/// registers (amount still to withdraw, running totals, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalState {
    /// Program counter; [`Program`] implementations define its meaning.
    pub pc: u32,
    /// General-purpose registers.
    pub regs: Vec<Value>,
}

impl LocalState {
    /// A state at `pc = 0` with the given registers.
    pub fn with_regs(regs: Vec<Value>) -> Self {
        LocalState { pc: 0, regs }
    }

    /// The all-zero start state with `n` registers.
    pub fn zeroed(n: usize) -> Self {
        LocalState {
            pc: 0,
            regs: vec![0; n],
        }
    }
}

/// A transaction program: a deterministic automaton over observed entity
/// values.
///
/// The paper allows nondeterministic automata; every workload in this
/// reproduction is deterministic *given its observations* (the banking
/// transfer's behaviour "depends on the amounts encountered in the various
/// accounts" — that is observation-dependence, not nondeterminism), and
/// determinism is what makes replay-validation meaningful. Randomized
/// workloads obtain their variety from generation-time randomness baked
/// into the program, not from run-time nondeterminism.
pub trait Program {
    /// The automaton's start state.
    fn start(&self) -> LocalState;

    /// The entity the automaton accesses next from `state`, or `None` if it
    /// has reached a final state.
    fn next_entity(&self, state: &LocalState) -> Option<EntityId>;

    /// Performs the access: from `state`, observe `observed` at the entity
    /// announced by [`Program::next_entity`]; returns the successor state
    /// and the value left in the entity.
    fn apply(&self, state: &LocalState, observed: Value) -> (LocalState, Value);

    /// Static introspection: the exact entity sequence every run touches,
    /// in step order, when the program's access pattern is
    /// observation-independent (straight-line). `None` for branching
    /// programs whose step sequence depends on observed values.
    ///
    /// Consumers (the `mla-lint` static certifier) treat `Some` as a
    /// promise: *every* run performs exactly these accesses in exactly
    /// this order.
    fn step_entities(&self) -> Option<Vec<EntityId>> {
        None
    }

    /// Static introspection: an over-approximation of the entities *any*
    /// run may touch, in no particular order, each accessed **at most
    /// once** per run. Branching programs whose step order is
    /// value-dependent but whose entity universe is fixed implement this;
    /// straight-line programs inherit it from
    /// [`Program::step_entities`] (only when no entity repeats — a
    /// repeated entity is not an "at most once" footprint). `None` means
    /// the program cannot describe itself and static analyses must treat
    /// its footprint as unknown.
    fn may_footprint(&self) -> Option<Vec<EntityId>> {
        let entities = self.step_entities()?;
        let mut sorted = entities.clone();
        sorted.sort_unstable();
        sorted.dedup();
        (sorted.len() == entities.len()).then_some(sorted)
    }
}

/// A straight-line script program: a fixed list of operations, one per
/// step. Sufficient for unconditional workloads and most tests; branching
/// programs implement [`Program`] directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptProgram {
    ops: Vec<ScriptOp>,
}

/// One straight-line operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    /// Read the entity, leaving it unchanged.
    Read(EntityId),
    /// Overwrite the entity with a constant.
    Write(EntityId, Value),
    /// Add a (possibly negative) constant to the entity.
    Add(EntityId, Value),
    /// Read the entity into register 0 (accumulating: `r0 += value`),
    /// leaving the entity unchanged. Used by audit-style programs.
    Accumulate(EntityId),
}

impl ScriptProgram {
    /// Builds a script from operations.
    pub fn new(ops: Vec<ScriptOp>) -> Self {
        ScriptProgram { ops }
    }

    /// Number of steps the script takes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Program for ScriptProgram {
    fn start(&self) -> LocalState {
        LocalState::zeroed(1)
    }

    fn next_entity(&self, state: &LocalState) -> Option<EntityId> {
        self.ops.get(state.pc as usize).map(|op| match op {
            ScriptOp::Read(e)
            | ScriptOp::Write(e, _)
            | ScriptOp::Add(e, _)
            | ScriptOp::Accumulate(e) => *e,
        })
    }

    fn apply(&self, state: &LocalState, observed: Value) -> (LocalState, Value) {
        let op = self.ops[state.pc as usize];
        let mut next = state.clone();
        next.pc += 1;
        let wrote = match op {
            ScriptOp::Read(_) => observed,
            ScriptOp::Write(_, v) => v,
            ScriptOp::Add(_, d) => observed + d,
            ScriptOp::Accumulate(_) => {
                next.regs[0] += observed;
                observed
            }
        };
        (next, wrote)
    }

    fn step_entities(&self) -> Option<Vec<EntityId>> {
        // Straight-line by construction: every run performs exactly the
        // script, whatever it observes.
        Some(
            self.ops
                .iter()
                .map(|op| match op {
                    ScriptOp::Read(e)
                    | ScriptOp::Write(e, _)
                    | ScriptOp::Add(e, _)
                    | ScriptOp::Accumulate(e) => *e,
                })
                .collect(),
        )
    }
}

/// A system of transactions (§3.1): programs plus entity initial values.
/// All variables are internal — entities are only touched via the
/// programs' steps.
pub struct System {
    programs: Vec<Box<dyn Program + Send + Sync>>,
    initial: HashMap<EntityId, Value>,
}

/// Why an execution failed replay-validation against a [`System`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A step named a transaction the system does not contain.
    UnknownTxn(TxnId),
    /// A transaction took a step after reaching a final state.
    StepAfterCompletion(TxnId),
    /// A step accessed a different entity than the program dictates.
    WrongEntity {
        /// The offending step (global index in the execution).
        at: usize,
        /// What the program would access.
        expected: EntityId,
        /// What the step recorded.
        found: EntityId,
    },
    /// A step observed a value different from the entity's current value.
    WrongObserved {
        /// The offending step index.
        at: usize,
        /// The entity's actual value at that point.
        expected: Value,
        /// What the step recorded.
        found: Value,
    },
    /// A step wrote a value different from what the program computes.
    WrongWrote {
        /// The offending step index.
        at: usize,
        /// The value the program computes.
        expected: Value,
        /// What the step recorded.
        found: Value,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            ValidationError::StepAfterCompletion(t) => {
                write!(f, "transaction {t} stepped after completion")
            }
            ValidationError::WrongEntity {
                at,
                expected,
                found,
            } => write!(
                f,
                "step {at}: program accesses {expected}, step has {found}"
            ),
            ValidationError::WrongObserved {
                at,
                expected,
                found,
            } => write!(
                f,
                "step {at}: entity holds {expected}, step observed {found}"
            ),
            ValidationError::WrongWrote {
                at,
                expected,
                found,
            } => write!(
                f,
                "step {at}: program writes {expected}, step wrote {found}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Why [`System::run_schedule`] rejected a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule named a transaction the system does not contain.
    UnknownTxn(TxnId),
    /// The schedule asked a finished transaction to step.
    TxnFinished(TxnId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            ScheduleError::TxnFinished(t) => write!(f, "transaction {t} already finished"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl System {
    /// Builds a system. Transaction `i` runs `programs[i]`; entities not in
    /// `initial` start at 0.
    pub fn new(
        programs: Vec<Box<dyn Program + Send + Sync>>,
        initial: impl IntoIterator<Item = (EntityId, Value)>,
    ) -> Self {
        System {
            programs,
            initial: initial.into_iter().collect(),
        }
    }

    /// Number of transactions.
    pub fn txn_count(&self) -> usize {
        self.programs.len()
    }

    /// The program of transaction `t`.
    pub fn program(&self, t: TxnId) -> Option<&(dyn Program + Send + Sync)> {
        self.programs.get(t.index()).map(|b| b.as_ref())
    }

    /// Initial value of an entity.
    pub fn initial_value(&self, e: EntityId) -> Value {
        self.initial.get(&e).copied().unwrap_or(0)
    }

    /// Replays `e`, checking the §3.1 consistency requirements: each
    /// internal variable starts at its initial value; each step of a
    /// process begins in the state the process had after its previous
    /// step; each step on a variable begins with the value the variable
    /// had after its previous access — and, additionally, that each step
    /// is exactly what the transaction's program dictates.
    pub fn validate(&self, e: &Execution) -> Result<(), ValidationError> {
        let mut states: HashMap<TxnId, LocalState> = HashMap::new();
        let mut values: HashMap<EntityId, Value> = HashMap::new();
        for (at, s) in e.steps().iter().enumerate() {
            let program = self
                .programs
                .get(s.txn.index())
                .ok_or(ValidationError::UnknownTxn(s.txn))?;
            let state = states
                .entry(s.txn)
                .or_insert_with(|| program.start())
                .clone();
            let expected_entity = program
                .next_entity(&state)
                .ok_or(ValidationError::StepAfterCompletion(s.txn))?;
            if expected_entity != s.entity {
                return Err(ValidationError::WrongEntity {
                    at,
                    expected: expected_entity,
                    found: s.entity,
                });
            }
            let current = *values
                .entry(s.entity)
                .or_insert_with(|| self.initial_value(s.entity));
            if current != s.observed {
                return Err(ValidationError::WrongObserved {
                    at,
                    expected: current,
                    found: s.observed,
                });
            }
            let (next_state, wrote) = program.apply(&state, current);
            if wrote != s.wrote {
                return Err(ValidationError::WrongWrote {
                    at,
                    expected: wrote,
                    found: s.wrote,
                });
            }
            values.insert(s.entity, wrote);
            states.insert(s.txn, next_state);
        }
        Ok(())
    }

    /// Runs the system under an explicit interleaving `schedule`: entry `k`
    /// names the transaction that performs the `k`-th step. Produces the
    /// (valid-by-construction) execution.
    pub fn run_schedule(&self, schedule: &[TxnId]) -> Result<Execution, ScheduleError> {
        let mut states: HashMap<TxnId, LocalState> = HashMap::new();
        let mut seqs: HashMap<TxnId, u32> = HashMap::new();
        let mut values: HashMap<EntityId, Value> = HashMap::new();
        let mut steps = Vec::with_capacity(schedule.len());
        for &t in schedule {
            let program = self
                .programs
                .get(t.index())
                .ok_or(ScheduleError::UnknownTxn(t))?;
            let state = states.entry(t).or_insert_with(|| program.start()).clone();
            let entity = program
                .next_entity(&state)
                .ok_or(ScheduleError::TxnFinished(t))?;
            let observed = *values
                .entry(entity)
                .or_insert_with(|| self.initial_value(entity));
            let (next_state, wrote) = program.apply(&state, observed);
            let seq = seqs.entry(t).or_insert(0);
            steps.push(Step {
                txn: t,
                seq: *seq,
                entity,
                observed,
                wrote,
            });
            *seq += 1;
            values.insert(entity, wrote);
            states.insert(t, next_state);
        }
        Ok(Execution::new(steps).expect("schedule-generated sequences are contiguous"))
    }

    /// Runs every transaction to completion, one after another, in the
    /// given order — producing a serial execution. Entity choice may depend
    /// on observed values, so the run is a real simulation, not a replay of
    /// precomputed step counts.
    pub fn run_serial(&self, order: &[TxnId]) -> Result<Execution, ScheduleError> {
        let mut states: HashMap<TxnId, LocalState> = HashMap::new();
        let mut seqs: HashMap<TxnId, u32> = HashMap::new();
        let mut values: HashMap<EntityId, Value> = HashMap::new();
        let mut steps = Vec::new();
        for &t in order {
            let program = self
                .programs
                .get(t.index())
                .ok_or(ScheduleError::UnknownTxn(t))?;
            loop {
                let state = states.entry(t).or_insert_with(|| program.start()).clone();
                let Some(entity) = program.next_entity(&state) else {
                    break;
                };
                let observed = *values
                    .entry(entity)
                    .or_insert_with(|| self.initial_value(entity));
                let (next_state, wrote) = program.apply(&state, observed);
                let seq = seqs.entry(t).or_insert(0);
                steps.push(Step {
                    txn: t,
                    seq: *seq,
                    entity,
                    observed,
                    wrote,
                });
                *seq += 1;
                values.insert(entity, wrote);
                states.insert(t, next_state);
            }
        }
        Ok(Execution::new(steps).expect("serial run produces contiguous sequences"))
    }

    /// Whether `e` runs every transaction of the system to completion.
    pub fn is_complete(&self, e: &Execution) -> bool {
        let mut states: HashMap<TxnId, LocalState> = HashMap::new();
        let mut values: HashMap<EntityId, Value> = HashMap::new();
        for s in e.steps() {
            let Some(program) = self.programs.get(s.txn.index()) else {
                return false;
            };
            let state = states
                .entry(s.txn)
                .or_insert_with(|| program.start())
                .clone();
            let (next_state, wrote) = program.apply(&state, s.observed);
            values.insert(s.entity, wrote);
            states.insert(s.txn, next_state);
        }
        (0..self.programs.len()).all(|i| {
            let t = TxnId(i as u32);
            let state = states
                .get(&t)
                .cloned()
                .unwrap_or_else(|| self.programs[i].start());
            self.programs[i].next_entity(&state).is_none()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ScriptOp::*;

    fn transfer_system() -> System {
        // t0: move 10 from x0 to x1. t1: move 5 from x2 to x3.
        System::new(
            vec![
                Box::new(ScriptProgram::new(vec![
                    Add(EntityId(0), -10),
                    Add(EntityId(1), 10),
                ])),
                Box::new(ScriptProgram::new(vec![
                    Add(EntityId(2), -5),
                    Add(EntityId(3), 5),
                ])),
            ],
            [(EntityId(0), 100), (EntityId(2), 50)],
        )
    }

    #[test]
    fn run_schedule_produces_valid_execution() {
        let sys = transfer_system();
        let e = sys
            .run_schedule(&[TxnId(0), TxnId(1), TxnId(0), TxnId(1)])
            .unwrap();
        assert_eq!(e.len(), 4);
        sys.validate(&e).expect("generated execution must validate");
        assert!(sys.is_complete(&e));
        // Check actual values.
        assert_eq!(e.steps()[0].observed, 100);
        assert_eq!(e.steps()[0].wrote, 90);
        assert_eq!(e.steps()[2].observed, 0);
        assert_eq!(e.steps()[2].wrote, 10);
    }

    #[test]
    fn run_serial_completes_each_txn() {
        let sys = transfer_system();
        let e = sys.run_serial(&[TxnId(1), TxnId(0)]).unwrap();
        assert!(e.is_serial());
        assert!(sys.is_complete(&e));
        sys.validate(&e).unwrap();
        assert_eq!(e.steps()[0].txn, TxnId(1));
    }

    #[test]
    fn schedule_rejects_finished_txn() {
        let sys = transfer_system();
        let err = sys
            .run_schedule(&[TxnId(0), TxnId(0), TxnId(0)])
            .unwrap_err();
        assert_eq!(err, ScheduleError::TxnFinished(TxnId(0)));
    }

    #[test]
    fn schedule_rejects_unknown_txn() {
        let sys = transfer_system();
        assert_eq!(
            sys.run_schedule(&[TxnId(7)]).unwrap_err(),
            ScheduleError::UnknownTxn(TxnId(7))
        );
    }

    #[test]
    fn validate_detects_wrong_observation() {
        let sys = transfer_system();
        let mut steps = sys
            .run_schedule(&[TxnId(0), TxnId(0)])
            .unwrap()
            .steps()
            .to_vec();
        steps[1].observed = 42;
        let e = Execution::new(steps).unwrap();
        match sys.validate(&e).unwrap_err() {
            ValidationError::WrongObserved { at: 1, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_detects_wrong_write() {
        let sys = transfer_system();
        let mut steps = sys.run_schedule(&[TxnId(0)]).unwrap().steps().to_vec();
        steps[0].wrote = 0;
        let e = Execution::new(steps).unwrap();
        match sys.validate(&e).unwrap_err() {
            ValidationError::WrongWrote { at: 0, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_detects_wrong_entity() {
        let sys = transfer_system();
        let mut steps = sys.run_schedule(&[TxnId(0)]).unwrap().steps().to_vec();
        steps[0].entity = EntityId(3);
        steps[0].observed = 0; // x3 starts at 0
        let e = Execution::new(steps).unwrap();
        match sys.validate(&e).unwrap_err() {
            ValidationError::WrongEntity { at: 0, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_detects_overrun() {
        let sys = transfer_system();
        let steps = vec![
            Step {
                txn: TxnId(0),
                seq: 0,
                entity: EntityId(0),
                observed: 100,
                wrote: 90,
            },
            Step {
                txn: TxnId(0),
                seq: 1,
                entity: EntityId(1),
                observed: 0,
                wrote: 10,
            },
            Step {
                txn: TxnId(0),
                seq: 2,
                entity: EntityId(0),
                observed: 90,
                wrote: 90,
            },
        ];
        let e = Execution::new(steps).unwrap();
        assert_eq!(
            sys.validate(&e).unwrap_err(),
            ValidationError::StepAfterCompletion(TxnId(0))
        );
    }

    #[test]
    fn equivalent_reorderings_stay_valid() {
        // The paper: "every total ordering of the steps of e which is
        // consistent with <=_e is also an execution of S". Check by
        // validating every equivalent reordering.
        let sys = transfer_system();
        let e = sys
            .run_schedule(&[TxnId(0), TxnId(1), TxnId(1), TxnId(0)])
            .unwrap();
        for e2 in e.equivalents() {
            sys.validate(&e2)
                .expect("equivalent reordering must remain a valid execution");
        }
    }

    #[test]
    fn accumulate_tracks_register() {
        let sys = System::new(
            vec![Box::new(ScriptProgram::new(vec![
                Accumulate(EntityId(0)),
                Accumulate(EntityId(1)),
            ]))],
            [(EntityId(0), 7), (EntityId(1), 8)],
        );
        let e = sys.run_serial(&[TxnId(0)]).unwrap();
        assert!(e.steps().iter().all(|s| s.is_read()));
        sys.validate(&e).unwrap();
    }

    #[test]
    fn incomplete_execution_detected() {
        let sys = transfer_system();
        let e = sys.run_schedule(&[TxnId(0)]).unwrap();
        assert!(!sys.is_complete(&e));
    }
}
