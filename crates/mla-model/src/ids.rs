//! Identifier newtypes for transactions and entities.

/// Identifies a transaction (a "process" in §3.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

/// Identifies an entity (a "variable" in §3.1 of the paper). Entities are
/// the internal variables of an application database: they are accessed
/// only through transaction steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// Entity values. A single integer domain suffices for every workload in
/// this reproduction (account balances, plan-element version stamps); the
/// model itself places no constraints on access semantics beyond each step
/// being an atomic read-modify-write of one entity.
pub type Value = i64;

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl TxnId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EntityId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TxnId(3).to_string(), "t3");
        assert_eq!(EntityId(0).to_string(), "x0");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(TxnId(1) < TxnId(2));
        assert!(EntityId(9) > EntityId(0));
    }
}
