//! Property-based tests for the §3 model: executions, dependency order,
//! equivalence, and validation.

use mla_model::appdb::{is_correctable_by_enumeration, SerialCriterion};
use mla_model::program::{ScriptOp, ScriptProgram, System};
use mla_model::{EntityId, Execution, TxnId};
use proptest::prelude::*;

/// Strategy: a small system (programs as (entity, delta) op lists) plus a
/// raw interleaving choice sequence.
fn system_strategy() -> impl Strategy<Value = (Vec<Vec<(u32, i64)>>, Vec<u8>)> {
    let program = proptest::collection::vec((0u32..5, -3i64..=3), 1..4);
    let programs = proptest::collection::vec(program, 1..4);
    let choices = proptest::collection::vec(any::<u8>(), 0..24);
    (programs, choices)
}

fn build(programs: &[Vec<(u32, i64)>]) -> System {
    System::new(
        programs
            .iter()
            .map(|ops| {
                Box::new(ScriptProgram::new(
                    ops.iter()
                        .map(|&(e, d)| ScriptOp::Add(EntityId(e), d))
                        .collect(),
                )) as Box<dyn mla_model::Program + Send + Sync>
            })
            .collect(),
        (0..5).map(|e| (EntityId(e), 100)),
    )
}

/// Drives the system with the choice sequence (skipping finished txns)
/// to produce a valid execution.
fn drive(sys: &System, n_txns: usize, choices: &[u8]) -> Execution {
    let mut schedule = Vec::new();
    let mut finished = vec![false; n_txns];
    let mut exec = Execution::empty();
    for &c in choices {
        let live: Vec<u32> = (0..n_txns as u32)
            .filter(|&t| !finished[t as usize])
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[c as usize % live.len()];
        schedule.push(TxnId(t));
        match sys.run_schedule(&schedule) {
            Ok(e) => exec = e,
            Err(_) => {
                schedule.pop();
                finished[t as usize] = true;
            }
        }
    }
    exec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_executions_validate((programs, choices) in system_strategy()) {
        let sys = build(&programs);
        let exec = drive(&sys, programs.len(), &choices);
        prop_assert!(sys.validate(&exec).is_ok(), "generated execution must validate: {}", exec);
    }

    #[test]
    fn dependency_graph_is_a_dag((programs, choices) in system_strategy()) {
        let sys = build(&programs);
        let exec = drive(&sys, programs.len(), &choices);
        // Dependency edges always point forward in execution order.
        let g = exec.dependency_graph();
        prop_assert!(mla_graph::topo::is_acyclic(&g));
        for (u, v) in g.edges() {
            prop_assert!(u < v, "dependency edge must point forward");
        }
    }

    #[test]
    fn all_linear_extensions_are_equivalent_and_valid((programs, choices) in system_strategy()) {
        let sys = build(&programs);
        let exec = drive(&sys, programs.len(), &choices);
        prop_assume!(exec.len() <= 7); // bound the extension count
        let all = exec.equivalents();
        prop_assert!(!all.is_empty());
        // §3.1: every reordering consistent with <=_e is an execution of
        // S with the same value sequences; equivalence is symmetric and
        // includes the original.
        prop_assert!(all.iter().any(|e| e == &exec));
        for e2 in &all {
            prop_assert!(exec.equivalent(e2));
            prop_assert!(e2.equivalent(&exec), "equivalence must be symmetric");
            prop_assert!(sys.validate(e2).is_ok(), "extension must stay valid");
        }
    }

    #[test]
    fn serial_executions_are_correctable((programs, _) in system_strategy()) {
        let sys = build(&programs);
        let order: Vec<TxnId> = (0..programs.len() as u32).map(TxnId).collect();
        let exec = sys.run_serial(&order).unwrap();
        prop_assert!(exec.is_serial());
        prop_assume!(exec.len() <= 8);
        prop_assert!(is_correctable_by_enumeration(&exec, &SerialCriterion));
    }

    #[test]
    fn value_conservation_under_adds((programs, choices) in system_strategy()) {
        // Every op is Add(e, d): the final sum over entities equals the
        // initial sum plus all applied deltas — regardless of order.
        let sys = build(&programs);
        let exec = drive(&sys, programs.len(), &choices);
        let mut values: std::collections::HashMap<EntityId, i64> =
            (0..5).map(|e| (EntityId(e), 100)).collect();
        for s in exec.steps() {
            values.insert(s.entity, s.wrote);
        }
        let applied: i64 = exec.steps().iter().map(|s| s.wrote - s.observed).sum();
        let total: i64 = values.values().sum();
        prop_assert_eq!(total, 500 + applied);
    }

    #[test]
    fn equivalence_respects_entity_order((programs, choices) in system_strategy()) {
        let sys = build(&programs);
        let exec = drive(&sys, programs.len(), &choices);
        prop_assume!(exec.len() >= 2 && exec.len() <= 7);
        for e2 in exec.equivalents() {
            // Per-entity access sequences must be identical.
            for ent in 0..5u32 {
                let a: Vec<(TxnId, u32)> = exec.steps().iter()
                    .filter(|s| s.entity == EntityId(ent))
                    .map(|s| s.key()).collect();
                let b: Vec<(TxnId, u32)> = e2.steps().iter()
                    .filter(|s| s.entity == EntityId(ent))
                    .map(|s| s.key()).collect();
                prop_assert_eq!(a, b);
            }
        }
    }
}
