//! Black-box pins for the `mla-lint` binary (mirrors
//! `crates/mla-check/tests/cli.rs`).
//!
//! * **Snapshot pins.** The `--json` output is machine-read by the CI
//!   lint gate, and the table rendering is the human contract — both
//!   are pinned byte-for-byte against checked-in snapshots for one
//!   workload per verdict class: `partitioned` (certified), `banking`
//!   (condemned everywhere), and `mixed` (partially certified, the
//!   lattice's reason to exist). Any drift — a new diagnostic, a
//!   changed cycle witness, different universe attribution — is a
//!   deliberate format bump, re-recorded by running the binary over
//!   the snapshot paths, never an accident.
//! * **Exit statuses.** 0 on every shipped workload (none carries an
//!   `error`-severity finding — those require an ill-formed nest or
//!   breakpoint table, which only a code change can introduce; the
//!   exit-1 wiring is `Report::has_errors`, unit-pinned in
//!   `src/diag.rs`), and 2 with a usage message on an unknown target.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mla-lint"))
        .args(args)
        .output()
        .expect("mla-lint runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn certified_report_matches_the_snapshot() {
    // Fully certified: MLA020 plus one MLA023 per universe, all notes.
    let out = run(&["partitioned"]);
    assert!(out.status.success(), "partitioned lint failed: {out:?}");
    assert_eq!(stdout(&out), include_str!("snapshots/partitioned.txt"));

    let out = run(&["partitioned", "--json"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), include_str!("snapshots/partitioned.json"));
}

#[test]
fn condemned_report_matches_the_snapshot() {
    // Every universe condemned: the global MLA021 witness plus one
    // MLA024 per universe naming the condemning cycle, and an empty
    // certified_universes list in the JSON.
    let out = run(&["banking"]);
    assert!(out.status.success(), "banking lint failed: {out:?}");
    assert_eq!(stdout(&out), include_str!("snapshots/banking.txt"));

    let out = run(&["banking", "--json"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), include_str!("snapshots/banking.json"));
}

#[test]
fn partially_certified_report_matches_the_snapshot() {
    // The lattice's headline: mixed renders "partially certified
    // (1/3 universes)", condemns universes 1 and 2 with their cycles,
    // and certifies universe 0.
    let out = run(&["mixed"]);
    assert!(out.status.success(), "mixed lint failed: {out:?}");
    let text = stdout(&out);
    assert_eq!(text, include_str!("snapshots/mixed.txt"));
    assert!(text.contains("partially certified (1/3 universes)"));

    let out = run(&["mixed", "--json"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), include_str!("snapshots/mixed.json"));
}

#[test]
fn all_json_is_the_gate_contract() {
    // The CI lint gate runs `mla-lint all --json`: one array holding
    // every shipped workload in canonical order, exit 0 because no
    // shipped spec carries an error-severity finding. The per-target
    // snapshots pin the bytes; here we pin the composition.
    let out = run(&["all", "--json"]);
    assert!(out.status.success(), "the lint gate would fail: {out:?}");
    let text = stdout(&out);
    for frag in [
        "[{\"workload\":\"banking(",
        "{\"workload\":\"cad(",
        "{\"workload\":\"mixed(",
        "{\"workload\":\"partitioned(",
        "\"severity\":\"warning\"",
    ] {
        assert!(text.contains(frag), "missing {frag} in: {text}");
    }
    assert!(
        !text.contains("\"severity\":\"error\""),
        "a shipped workload grew an error-severity diagnostic"
    );
    // One JSON array, not four.
    assert!(text.starts_with('[') && text.ends_with("]\n"));
}

#[test]
fn unknown_target_exits_2_with_usage() {
    let out = run(&["no-such-workload"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).is_empty());
    let err = String::from_utf8(out.stderr.clone()).expect("utf-8 stderr");
    assert_eq!(
        err,
        "mla-lint: unknown workload 'no-such-workload' \
         (expected banking, cad, mixed, partitioned, or all)\n"
    );
}
