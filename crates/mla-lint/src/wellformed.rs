//! Pass 1 — well-formedness: does the breakpoint specification satisfy
//! the theory's preconditions, and does it actually constrain anything?
//!
//! * `MLA001` — a transaction's breakpoint depth differs from the
//!   nest's `k` (the §4.3 specification is over one fixed nest).
//! * `MLA002` — the breakpoint structure's static introspection is
//!   inconsistent with its runtime behavior: a reported level falls
//!   outside `2 .. k` (§4.2's refinement chain has breakpoints only at
//!   the mid levels), or a guaranteed breakpoint fails to appear on the
//!   all-zeros probe run. Straight-line programs are probed position by
//!   position — §6's compatibility condition makes prefix probing
//!   meaningful.
//! * `MLA003` — `k = 2`: the whole apparatus collapses to classical
//!   serializability (§4.3); the spec buys nothing over \[EGLT\].
//! * `MLA004` — a transaction guarantees level-2 breakpoints after
//!   every step (density 1 at the coarsest mid level): every
//!   interleaving of it is permitted, as experiment E8's density sweep
//!   shows, so it is unconstrained beyond single-step atomicity.

use mla_model::{Step, TxnId};
use mla_workload::Workload;

use crate::diag::{Code, Diagnostic, Severity, Span};

/// Runs the well-formedness pass.
pub fn run(w: &Workload) -> Vec<Diagnostic> {
    let k = w.nest.k();
    let mut diags = Vec::new();
    if k == 2 {
        diags.push(Diagnostic::new(
            Code::SerializabilityDegenerate,
            Severity::Warning,
            Span::Spec,
            "k = 2: multilevel atomicity degenerates to classical serializability",
        ));
    }
    for (t, (program, bp)) in w.programs.iter().zip(&w.breakpoints).enumerate() {
        let txn = TxnId(t as u32);
        if bp.k() != k {
            diags.push(Diagnostic::new(
                Code::BreakpointDepthMismatch,
                Severity::Error,
                Span::Txn(txn),
                format!("breakpoint depth {} does not match the {k}-nest", bp.k()),
            ));
            // Probing a wrong-depth structure would only cascade noise.
            continue;
        }
        let mid = 2..k;
        if let Some(u) = bp.uniform_guarantee() {
            if !mid.contains(&u) {
                diags.push(Diagnostic::new(
                    Code::IntrospectionInconsistent,
                    Severity::Error,
                    Span::Txn(txn),
                    format!("uniform breakpoint guarantee at level {u}, outside 2..{k}"),
                ));
            } else if u == 2 {
                diags.push(Diagnostic::new(
                    Code::DensityOneUnconstrained,
                    Severity::Warning,
                    Span::Txn(txn),
                    "level-2 breakpoints after every step: density 1 permits every \
                     interleaving (E8); the transaction is unconstrained beyond \
                     single-step atomicity",
                ));
            }
        }
        // Straight-line programs admit a synthetic probe run: values are
        // all zero (breakpoint positions may depend on values, but
        // *guaranteed* positions must hold on every run, this one
        // included).
        let Some(entities) = program.step_entities() else {
            continue;
        };
        let steps: Vec<Step> = entities
            .iter()
            .enumerate()
            .map(|(i, &entity)| Step {
                txn,
                seq: i as u32,
                entity,
                observed: 0,
                wrote: 0,
            })
            .collect();
        for pos in 1..steps.len() {
            let actual = bp.min_level_after(&steps[..pos]);
            if let Some(a) = actual {
                if !mid.contains(&a) {
                    diags.push(Diagnostic::new(
                        Code::IntrospectionInconsistent,
                        Severity::Error,
                        Span::TxnPos(txn, pos),
                        format!("breakpoint at level {a}, outside 2..{k}"),
                    ));
                }
            }
            let mut promised: Vec<usize> = Vec::new();
            if let Some(g) = bp.guaranteed_level_after(pos) {
                if !mid.contains(&g) {
                    diags.push(Diagnostic::new(
                        Code::IntrospectionInconsistent,
                        Severity::Error,
                        Span::TxnPos(txn, pos),
                        format!("guaranteed breakpoint level {g}, outside 2..{k}"),
                    ));
                } else {
                    promised.push(g);
                }
            }
            if let Some(u) = bp.uniform_guarantee().filter(|u| mid.contains(u)) {
                promised.push(u);
            }
            for g in promised {
                if actual.is_none_or(|a| a > g) {
                    diags.push(Diagnostic::new(
                        Code::IntrospectionInconsistent,
                        Severity::Error,
                        Span::TxnPos(txn, pos),
                        format!(
                            "a level-{g} breakpoint is guaranteed here but the probe \
                             run reports {}",
                            match actual {
                                Some(a) => format!("level {a}"),
                                None => "none".to_string(),
                            }
                        ),
                    ));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::{EntityId, LocalState, Program, Value};
    use mla_txn::{EveryStep, NoBreakpoints, PhaseTable, RuntimeBreakpoints};
    use std::sync::Arc;

    fn toy(k: usize, bps: Vec<Arc<dyn RuntimeBreakpoints>>, paths: Vec<Vec<u32>>) -> Workload {
        let n = bps.len();
        Workload {
            name: "toy".into(),
            nest: Nest::new(k, paths).unwrap(),
            programs: (0..n)
                .map(|_| {
                    Arc::new(ScriptProgram::new(vec![
                        Add(EntityId(0), 1),
                        Add(EntityId(1), 1),
                    ])) as Arc<dyn Program + Send + Sync>
                })
                .collect(),
            breakpoints: bps,
            initial: vec![(EntityId(0), 0), (EntityId(1), 0)],
            arrivals: vec![0; n],
        }
    }

    #[test]
    fn depth_mismatch_is_an_error() {
        let wl = toy(
            3,
            vec![
                Arc::new(NoBreakpoints { k: 3 }),
                Arc::new(NoBreakpoints { k: 4 }),
            ],
            vec![vec![0], vec![0]],
        );
        let diags = run(&wl);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::BreakpointDepthMismatch);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span, Span::Txn(TxnId(1)));
    }

    #[test]
    fn k2_and_density_one_degeneracies_warn() {
        let wl = toy(2, vec![Arc::new(NoBreakpoints { k: 2 })], vec![Vec::new()]);
        let diags = run(&wl);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::SerializabilityDegenerate);

        let wl = toy(
            3,
            vec![
                Arc::new(EveryStep { k: 3, level: 2 }),
                Arc::new(NoBreakpoints { k: 3 }),
            ],
            vec![vec![0], vec![0]],
        );
        let diags = run(&wl);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DensityOneUnconstrained);
        assert_eq!(diags[0].span, Span::Txn(TxnId(0)));
    }

    #[test]
    fn clean_spec_produces_no_diagnostics() {
        let wl = toy(
            3,
            vec![
                Arc::new(PhaseTable::new(3, [(1, 2)])),
                Arc::new(NoBreakpoints { k: 3 }),
            ],
            vec![vec![0], vec![0]],
        );
        assert!(run(&wl).is_empty());
    }

    /// A deliberately lying introspection: promises a guaranteed level-2
    /// breakpoint that `min_level_after` never reports.
    struct Liar;
    impl RuntimeBreakpoints for Liar {
        fn k(&self) -> usize {
            3
        }
        fn min_level_after(&self, _prefix: &[Step]) -> Option<usize> {
            None
        }
        fn guaranteed_level_after(&self, pos: usize) -> Option<usize> {
            (pos == 1).then_some(2)
        }
    }

    #[test]
    fn dishonored_guarantee_is_caught_by_the_probe() {
        let wl = toy(
            3,
            vec![Arc::new(Liar), Arc::new(NoBreakpoints { k: 3 })],
            vec![vec![0], vec![0]],
        );
        let diags = run(&wl);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::IntrospectionInconsistent);
        assert_eq!(diags[0].span, Span::TxnPos(TxnId(0), 1));
        assert!(diags[0].message.contains("guaranteed"));
    }

    /// A value-dependent program: the probe must simply skip it.
    struct Opaque;
    impl Program for Opaque {
        fn start(&self) -> LocalState {
            LocalState::zeroed(0)
        }
        fn next_entity(&self, _state: &LocalState) -> Option<EntityId> {
            None
        }
        fn apply(&self, state: &LocalState, _observed: Value) -> (LocalState, Value) {
            (state.clone(), 0)
        }
    }

    #[test]
    fn opaque_programs_are_not_probed() {
        let mut wl = toy(
            3,
            vec![Arc::new(Liar), Arc::new(NoBreakpoints { k: 3 })],
            vec![vec![0], vec![0]],
        );
        wl.programs[0] = Arc::new(Opaque);
        assert!(run(&wl).is_empty(), "no straight-line steps, no probe");
    }
}
