//! Pass 3 — static safety certification: discharging §5's Theorem 2 at
//! analysis time, for *every* interleaving at once.
//!
//! # The model
//!
//! Theorem 2 says a history is correctable iff the coherent closure of
//! its base order (program order + per-entity access order) is acyclic.
//! A closure cycle must alternate cross-transaction conflict edges with
//! within-transaction travel. Forward travel is program order; the only
//! *backward* travel the closure offers is condition (b)'s lift: an
//! outgoing conflict at access `α` toward a level-`ℓ` partner may be
//! taken from any later access `α'` in `α`'s level-`ℓ` segment — so a
//! path that has already reached `α'` can still exit "at" `α`, i.e.
//! travel backward across `α' .. α`, but never across a level-`ℓ`
//! breakpoint.
//!
//! We build a finite graph over *access slots* (exact step positions,
//! or footprint entities for branching programs — see
//! [`TxnProfile`]): an edge `(t, a_in) -> (u, b_in)` exists when, having
//! arrived at slot `a_in` of `t`, some run can exit through an access of
//! `t` on an entity shared with `u`, entering `u` at `b_in`. The edge is
//! *backward-capable* when that exit can be performed earlier than the
//! arrival. Every realizable closure cycle projects onto a cycle in this
//! graph, and a closed walk of purely forward traversals is
//! time-inconsistent (each hop follows performance order, so the walk
//! cannot return to its start). Hence:
//!
//! > **If no graph cycle passes through a backward-capable edge, no
//! > interleaving can close a closure cycle** — the workload is safe
//! > under *any* scheduler that keeps steps inside the profiled
//! > footprints, and a [`StaticCert`] is issued.
//!
//! Soundness leans on the profiles being conservative both ways: real
//! runs have *at least* the guaranteed breakpoints (segments only
//! shrink, so modeled backward travel covers every real lift) and *at
//! most* the may-footprint accesses (modeled conflict edges cover every
//! real conflict). The check itself is one strongly-connected-components
//! pass: a backward edge `u -> v` lies on a cycle iff `u` and `v` share
//! a component.

use mla_core::cert::StaticCert;
use mla_core::nest::Nest;
use mla_model::{EntityId, TxnId};
use mla_workload::Workload;

use crate::diag::{Code, Diagnostic, Severity, Span};
use crate::profile::TxnProfile;

/// The certification pass's outcome: the certificate (if earned) plus
/// the MLA02x diagnostics explaining the verdict.
pub struct Certification {
    /// The certificate, when the no-mixed-cycle property was proven.
    pub cert: Option<StaticCert>,
    /// MLA020 (issued), MLA021 (denied, with witness), or MLA022
    /// (abstained: footprints unknown).
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs static certification over a workload.
pub fn certify_workload(w: &Workload) -> Certification {
    let profiles: Vec<Option<TxnProfile>> = w
        .programs
        .iter()
        .zip(&w.breakpoints)
        .map(|(p, b)| TxnProfile::build(p.as_ref(), b.as_ref()))
        .collect();
    let mut diagnostics = Vec::new();
    if profiles.iter().any(Option::is_none) {
        for (t, _) in profiles.iter().enumerate().filter(|(_, p)| p.is_none()) {
            diagnostics.push(Diagnostic::new(
                Code::FootprintUnknown,
                Severity::Note,
                Span::Txn(TxnId(t as u32)),
                "entity footprint is not statically known; certification abstains",
            ));
        }
        return Certification {
            cert: None,
            diagnostics,
        };
    }
    let profiles: Vec<TxnProfile> = profiles.into_iter().map(Option::unwrap).collect();
    let graph = ConflictGraph::build(&w.nest, &profiles);
    match graph.mixed_cycle_witness() {
        None => {
            diagnostics.push(Diagnostic::new(
                Code::CertIssued,
                Severity::Note,
                Span::Spec,
                format!(
                    "static safety certificate: no interleaving of the {} transactions \
                     can close a coherent-closure cycle ({} may-conflict edges, \
                     {} backward-capable, none on a cycle)",
                    profiles.len(),
                    graph.edge_count,
                    graph.backward.len(),
                ),
            ));
            let footprints = profiles.iter().map(TxnProfile::footprint).collect();
            Certification {
                cert: Some(StaticCert::new(w.nest.k(), footprints)),
                diagnostics,
            }
        }
        Some(b) => {
            diagnostics.push(Diagnostic::new(
                Code::CertDenied,
                Severity::Warning,
                Span::Txn(b.from),
                format!(
                    "a mixed closure cycle is realizable: t{} can exit to t{} via x{} \
                     behind its own arrival (a condition-(b) lift inside a level-{} \
                     segment) and conflict edges lead back — some interleavings need \
                     runtime checking",
                    b.from.0, b.to.0, b.entity.0, b.level,
                ),
            ));
            Certification {
                cert: None,
                diagnostics,
            }
        }
    }
}

/// A backward-capable edge, kept for witness reporting.
struct BackEdge {
    from_node: usize,
    to_node: usize,
    from: TxnId,
    to: TxnId,
    entity: EntityId,
    level: usize,
}

/// The may-conflict graph over access slots.
struct ConflictGraph {
    /// Adjacency over dense node ids (`offsets[t] + slot`).
    adj: Vec<Vec<usize>>,
    edge_count: usize,
    backward: Vec<BackEdge>,
}

impl ConflictGraph {
    fn build(nest: &Nest, profiles: &[TxnProfile]) -> ConflictGraph {
        let n = profiles.len();
        let mut offsets = Vec::with_capacity(n);
        let mut total = 0usize;
        for p in profiles {
            offsets.push(total);
            total += p.slot_count();
        }
        let footprints: Vec<Vec<EntityId>> = profiles.iter().map(TxnProfile::footprint).collect();
        // Entity → transactions touching it: only pairs that actually
        // share an entity are visited (all-pairs over the transaction
        // count is quadratic and dominated by disjoint-footprint pairs
        // on partitioned workloads).
        let mut by_entity: std::collections::BTreeMap<EntityId, Vec<usize>> = Default::default();
        for (t, fp) in footprints.iter().enumerate() {
            for &e in fp {
                by_entity.entry(e).or_default().push(t);
            }
        }
        let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); total];
        let mut backward_set = std::collections::BTreeSet::new();
        let mut backward = Vec::new();
        for (&e, touching) in &by_entity {
            for &t in touching {
                for &u in touching {
                    if t == u {
                        continue;
                    }
                    let level = nest.level(TxnId(t as u32), TxnId(u as u32));
                    for &a_out in &profiles[t].slots_on(e) {
                        for &b_in in &profiles[u].slots_on(e) {
                            let to = offsets[u] + b_in;
                            for a_in in 0..profiles[t].slot_count() {
                                if !profiles[t].can_traverse(a_in, a_out, level) {
                                    continue;
                                }
                                let from = offsets[t] + a_in;
                                adj[from].insert(to);
                                if profiles[t].backward_traverse(a_in, a_out, level)
                                    && backward_set.insert((from, to))
                                {
                                    backward.push(BackEdge {
                                        from_node: from,
                                        to_node: to,
                                        from: TxnId(t as u32),
                                        to: TxnId(u as u32),
                                        entity: e,
                                        level,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        let adj: Vec<Vec<usize>> = adj.into_iter().map(|s| s.into_iter().collect()).collect();
        let edge_count = adj.iter().map(Vec::len).sum();
        ConflictGraph {
            adj,
            edge_count,
            backward,
        }
    }

    /// The first backward-capable edge lying on a cycle, if any: one
    /// Kosaraju SCC pass, then `u -> v` is on a cycle iff `u` and `v`
    /// share a component.
    fn mixed_cycle_witness(&self) -> Option<&BackEdge> {
        if self.backward.is_empty() {
            return None;
        }
        let comp = self.scc();
        self.backward
            .iter()
            .find(|b| comp[b.from_node] == comp[b.to_node])
    }

    /// Kosaraju's algorithm, iterative (finish order on the graph, then
    /// component sweep on the transpose).
    fn scc(&self) -> Vec<usize> {
        let n = self.adj.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            // Stack of (node, next child index) frames.
            let mut stack = vec![(start, 0usize)];
            seen[start] = true;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < self.adj[v].len() {
                    let w = self.adj[v][*i];
                    *i += 1;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        let mut transpose: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, outs) in self.adj.iter().enumerate() {
            for &w in outs {
                transpose[w].push(v);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut current = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = current;
            while let Some(v) = stack.pop() {
                for &w in &transpose[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = current;
                        stack.push(w);
                    }
                }
            }
            current += 1;
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_workload::{banking, cad, partitioned};

    #[test]
    fn partitioned_workload_certifies() {
        // Every cross-transaction conflict runs through a universe's
        // single shared slot, accessed exactly once per transaction at a
        // known position: no backward-capable edge can exist.
        let wl = partitioned::generate(partitioned::PartitionedConfig::default()).workload;
        let c = certify_workload(&wl);
        let cert = c.cert.expect("partitioned must earn a certificate");
        assert_eq!(cert.k(), 3);
        assert_eq!(cert.txn_count(), wl.txn_count());
        assert_eq!(c.diagnostics.len(), 1);
        assert_eq!(c.diagnostics[0].code, Code::CertIssued);
        // The certificate's guard accepts exactly the profiled entities.
        assert!(cert.covers(TxnId(0), EntityId(0)), "scanner 0 reads slot 0");
        assert!(!cert.covers(TxnId(0), EntityId(1)), "foreign shared slot");
    }

    #[test]
    fn banking_workload_is_denied_with_witness() {
        // Atomic audits share many accounts with the transfers and carry
        // no guaranteed breakpoints: their whole run is one segment, so
        // backward exits (and thus mixed cycles) are realizable.
        let wl = banking::generate(banking::BankingConfig::default()).workload;
        let c = certify_workload(&wl);
        assert!(c.cert.is_none(), "banking must not certify");
        assert_eq!(c.diagnostics.len(), 1);
        let d = &c.diagnostics[0];
        assert_eq!(d.code, Code::CertDenied);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("mixed closure cycle"));
    }

    #[test]
    fn cad_workload_is_denied() {
        let wl = cad::generate(cad::CadConfig::default()).workload;
        let c = certify_workload(&wl);
        assert!(c.cert.is_none(), "atomic snapshots forbid certification");
        assert_eq!(c.diagnostics[0].code, Code::CertDenied);
    }

    #[test]
    fn scc_finds_the_obvious_cycle() {
        let g = ConflictGraph {
            adj: vec![vec![1], vec![2], vec![0], vec![]],
            edge_count: 3,
            backward: vec![BackEdge {
                from_node: 2,
                to_node: 0,
                from: TxnId(1),
                to: TxnId(0),
                entity: EntityId(9),
                level: 1,
            }],
        };
        assert!(g.mixed_cycle_witness().is_some());
        let comp = g.scc();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }
}
