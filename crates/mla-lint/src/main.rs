//! The `mla-lint` CLI: run the analyzer over the shipped workloads.
//!
//! ```text
//! mla-lint [banking|cad|mixed|partitioned|all] [--json]
//! ```
//!
//! With `--json` the reports are emitted as a JSON array; otherwise as
//! human tables. Exit status 1 when any report contains an error-level
//! diagnostic, 2 on usage errors.

#![forbid(unsafe_code)]

use mla_lint::analyze;
use mla_workload::{banking, cad, mixed, partitioned, Workload};

fn workload_by_name(name: &str) -> Option<Vec<Workload>> {
    match name {
        "banking" => Some(vec![
            banking::generate(banking::BankingConfig::default()).workload,
        ]),
        "cad" => Some(vec![cad::generate(cad::CadConfig::default()).workload]),
        "mixed" => Some(vec![
            mixed::generate(mixed::MixedConfig::default()).workload,
        ]),
        "partitioned" => Some(vec![
            partitioned::generate(partitioned::PartitionedConfig::default()).workload,
        ]),
        "all" => {
            let mut all = Vec::new();
            all.extend(workload_by_name("banking").unwrap());
            all.extend(workload_by_name("cad").unwrap());
            all.extend(workload_by_name("mixed").unwrap());
            all.extend(workload_by_name("partitioned").unwrap());
            Some(all)
        }
        _ => None,
    }
}

fn main() {
    let mut json = false;
    let mut targets: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: mla-lint [banking|cad|mixed|partitioned|all] [--json]");
                return;
            }
            name => targets.push(name.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let mut workloads = Vec::new();
    for t in &targets {
        match workload_by_name(t) {
            Some(w) => workloads.extend(w),
            None => {
                eprintln!(
                    "mla-lint: unknown workload '{t}' (expected banking, cad, mixed, partitioned, or all)"
                );
                std::process::exit(2);
            }
        }
    }
    let reports: Vec<_> = workloads.iter().map(analyze).collect();
    if json {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for r in &reports {
            print!("{}", r.render());
        }
    }
    if reports.iter().any(|r| r.has_errors()) {
        std::process::exit(1);
    }
}
