//! The diagnostic framework: stable codes, severities, spec spans, and
//! the rendered report (human table + JSON).
//!
//! Codes are stable API: once shipped, a code keeps its meaning forever
//! (retired codes are never reused). Each code carries the paper clause
//! it enforces, so a report line always points back into Lynch (1982).

use mla_model::TxnId;

/// Stable diagnostic codes. The numeric ranges group the passes:
/// `MLA00x` well-formedness, `MLA01x` spec smells, `MLA02x` static
/// safety certification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// MLA001: a transaction's breakpoint depth differs from the nest's.
    BreakpointDepthMismatch,
    /// MLA002: runtime breakpoint introspection is inconsistent — a
    /// reported level is outside `2 .. k`, or a static guarantee is not
    /// honored on the probe run.
    IntrospectionInconsistent,
    /// MLA003: `k = 2` — the specification degenerates to classical
    /// serializability.
    SerializabilityDegenerate,
    /// MLA004: density-1 breakpoints at level 2 — the specification
    /// permits every interleaving and constrains nothing beyond
    /// single-step atomicity.
    DensityOneUnconstrained,
    /// MLA010: a nest level repeats the previous level's partition.
    DegenerateLevel,
    /// MLA011: singleton classes at a mid level — the level's extra
    /// interleaving freedom is unused by those transactions.
    SingletonClasses,
    /// MLA012: a transaction declares breakpoints at a level where it
    /// has no partners — they can never enable an interleaving.
    NeverEnabledBreakpoint,
    /// MLA020: a static safety certificate was issued.
    CertIssued,
    /// MLA021: certification denied — a mixed closure cycle is
    /// realizable under some interleaving.
    CertDenied,
    /// MLA022: certification abstained — a transaction's entity
    /// footprint is not statically known.
    FootprintUnknown,
    /// MLA023: a universe (top-level nest class) was certified — every
    /// realizable closure cycle avoids its transactions.
    UniverseCertified,
    /// MLA024: a universe was condemned — a mixed strongly connected
    /// component of the may-conflict graph names one of its
    /// transactions; the diagnostic carries the condemning cycle.
    UniverseCondemned,
    /// MLA025: the footprint dataflow refinement pruned a spurious
    /// backward edge (its two conflict orientations cannot co-occur in
    /// one history).
    EdgeRefined,
}

impl Code {
    /// The stable wire form, e.g. `"MLA021"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::BreakpointDepthMismatch => "MLA001",
            Code::IntrospectionInconsistent => "MLA002",
            Code::SerializabilityDegenerate => "MLA003",
            Code::DensityOneUnconstrained => "MLA004",
            Code::DegenerateLevel => "MLA010",
            Code::SingletonClasses => "MLA011",
            Code::NeverEnabledBreakpoint => "MLA012",
            Code::CertIssued => "MLA020",
            Code::CertDenied => "MLA021",
            Code::FootprintUnknown => "MLA022",
            Code::UniverseCertified => "MLA023",
            Code::UniverseCondemned => "MLA024",
            Code::EdgeRefined => "MLA025",
        }
    }

    /// The clause of the paper this code enforces or applies.
    pub fn clause(self) -> &'static str {
        match self {
            Code::BreakpointDepthMismatch => "§4.3 breakpoint specification",
            Code::IntrospectionInconsistent => "§6 compatibility condition",
            Code::SerializabilityDegenerate => "§4.3 k=2 collapse",
            Code::DensityOneUnconstrained => "§4.2 breakpoint density (E8)",
            Code::DegenerateLevel => "§4.2 nest refinement chain",
            Code::SingletonClasses => "§4.2 k-nest classes",
            Code::NeverEnabledBreakpoint => "§4.2 B_t(i) segments",
            Code::CertIssued => "§5 Theorem 2, discharged statically",
            Code::CertDenied => "§5 Theorem 2, discharged statically",
            Code::FootprintUnknown => "§3 entity footprint",
            Code::UniverseCertified => "§5 Theorem 2, per top-level class",
            Code::UniverseCondemned => "§5 Theorem 2, per top-level class",
            Code::EdgeRefined => "§5 may-conflict refinement",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How seriously to take a diagnostic. `Error` means the specification
/// is malformed (the theory's preconditions fail); `Warning` flags
/// likely-unintended structure; `Note` is informational.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The specification violates a precondition of the theory.
    Error,
    /// Suspicious structure, probably not what the author meant.
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    /// Lower-case label, e.g. `"warning"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Where in the breakpoint specification a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Span {
    /// The whole specification.
    Spec,
    /// A nest level.
    Level(usize),
    /// One transaction's breakpoint structure.
    Txn(TxnId),
    /// A position inside one transaction (after `pos` performed steps).
    TxnPos(TxnId, usize),
    /// One universe (top-level nest class) of the certification lattice.
    Universe(u32),
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Span::Spec => write!(f, "spec"),
            Span::Level(i) => write!(f, "level {i}"),
            Span::Txn(t) => write!(f, "t{}", t.0),
            Span::TxnPos(t, p) => write!(f, "t{}@{p}", t.0),
            Span::Universe(u) => write!(f, "universe {u}"),
        }
    }
}

/// One finding: a stable code, a severity, a pointer into the spec, and
/// a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// How seriously to take it.
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// What it says.
    pub message: String,
}

impl Diagnostic {
    /// Convenience constructor.
    pub fn new(code: Code, severity: Severity, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
        }
    }
}

/// The analyzer's output for one workload: all diagnostics from all
/// passes plus the certification verdict.
pub struct Report {
    /// Workload label.
    pub workload: String,
    /// Nest depth.
    pub k: usize,
    /// Transactions analyzed.
    pub txn_count: usize,
    /// Whether the certification pass certified **every** universe (the
    /// pre-lattice all-or-nothing verdict).
    pub certified: bool,
    /// Universes (top-level nest classes) in the certification lattice
    /// (0 when the pass abstained).
    pub universe_count: usize,
    /// The universes that individually certified, ascending.
    pub certified_universes: Vec<u32>,
    /// Findings, sorted errors-first then by code and span.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Sorts diagnostics into the canonical report order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|a| (a.severity, a.code, a.span));
    }

    /// Whether any diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The human-readable table.
    pub fn render(&self) -> String {
        let verdict = if self.certified {
            "certified".to_string()
        } else if !self.certified_universes.is_empty() {
            format!(
                "partially certified ({}/{} universes)",
                self.certified_universes.len(),
                self.universe_count
            )
        } else {
            "not certified".to_string()
        };
        let mut out = format!(
            "mla-lint: {} (k={}, {} txns) — {}\n",
            self.workload, self.k, self.txn_count, verdict
        );
        if self.diagnostics.is_empty() {
            out.push_str("  (clean)\n");
            return out;
        }
        let rows: Vec<[String; 4]> = self
            .diagnostics
            .iter()
            .map(|d| {
                [
                    d.code.as_str().to_string(),
                    d.severity.as_str().to_string(),
                    d.span.to_string(),
                    d.message.clone(),
                ]
            })
            .collect();
        let mut widths = [4usize, 8, 5, 7]; // CODE SEVERITY WHERE MESSAGE
        for r in &rows {
            for (w, cell) in widths.iter_mut().zip(r.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let header = ["CODE", "SEVERITY", "WHERE", "MESSAGE"];
        let fmt_row = |cells: [&str; 4]| {
            let mut line = String::from(" ");
            for (i, cell) in cells.iter().enumerate() {
                line.push(' ');
                line.push_str(cell);
                // The last column is ragged-right.
                if i + 1 < cells.len() {
                    for _ in cell.chars().count()..widths[i] {
                        line.push(' ');
                    }
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(header));
        for r in &rows {
            out.push_str(&fmt_row([&r[0], &r[1], &r[2], &r[3]]));
        }
        out
    }

    /// The machine-readable report, hand-rolled JSON (the workspace
    /// carries no serializer dependency).
    pub fn to_json(&self) -> String {
        let universes = self
            .certified_universes
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut s = format!(
            "{{\"workload\":\"{}\",\"k\":{},\"txns\":{},\"certified\":{},\
             \"universes\":{},\"certified_universes\":[{}],\"diagnostics\":[",
            esc(&self.workload),
            self.k,
            self.txn_count,
            self.certified,
            self.universe_count,
            universes
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"where\":\"{}\",\"clause\":\"{}\",\"message\":\"{}\"}}",
                d.code.as_str(),
                d.severity.as_str(),
                esc(&d.span.to_string()),
                esc(d.code.clause()),
                esc(&d.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// JSON string escaping for the hand-rolled serializer.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::BreakpointDepthMismatch.as_str(), "MLA001");
        assert_eq!(Code::CertDenied.as_str(), "MLA021");
        assert!(Code::CertIssued.clause().contains("§5"));
    }

    #[test]
    fn report_renders_and_serializes() {
        let mut r = Report {
            workload: "toy".into(),
            k: 3,
            txn_count: 2,
            certified: true,
            universe_count: 1,
            certified_universes: vec![0],
            diagnostics: vec![
                Diagnostic::new(Code::CertIssued, Severity::Note, Span::Spec, "ok"),
                Diagnostic::new(
                    Code::BreakpointDepthMismatch,
                    Severity::Error,
                    Span::Txn(TxnId(1)),
                    "k is 4, nest is 3",
                ),
            ],
        };
        r.sort();
        assert_eq!(r.diagnostics[0].code, Code::BreakpointDepthMismatch);
        assert!(r.has_errors());
        let text = r.render();
        assert!(text.contains("certified"));
        assert!(text.contains("MLA001"));
        assert!(text.contains("t1"));
        let json = r.to_json();
        assert!(json.contains("\"code\":\"MLA001\""));
        assert!(json.contains("\"certified\":true"));
        assert!(json.contains("\"where\":\"t1\""));
        assert!(json.contains("\"universes\":1"));
        assert!(json.contains("\"certified_universes\":[0]"));
    }

    #[test]
    fn partial_certification_renders_the_fraction() {
        let r = Report {
            workload: "mix".into(),
            k: 4,
            txn_count: 12,
            certified: false,
            universe_count: 3,
            certified_universes: vec![1],
            diagnostics: Vec::new(),
        };
        assert!(r.render().contains("partially certified (1/3 universes)"));
        assert!(r.to_json().contains("\"certified_universes\":[1]"));
        let none = Report {
            certified_universes: Vec::new(),
            ..r
        };
        assert!(none.render().contains("— not certified"));
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
