//! `mla-lint` — static analysis for multilevel-atomicity breakpoint
//! specifications.
//!
//! Three passes over a [`Workload`] (nest + programs + runtime
//! breakpoints), each reporting stable `MLA0xx` codes through the
//! [`diag`] framework:
//!
//! 1. **Well-formedness** ([`wellformed`], `MLA00x`) — the theory's
//!    preconditions: matching breakpoint depth, honest introspection
//!    under §6's prefix-compatibility probing, and the degenerate
//!    parameterizations (`k = 2` ≡ serializability, density-1 ≡
//!    unconstrained).
//! 2. **Spec smells** ([`smells`], `MLA01x`) — legal but inert
//!    structure: repeated nest levels, singleton classes, breakpoints no
//!    partner can ever use.
//! 3. **Static safety certification** ([`certify`], `MLA02x`) — §5's
//!    Theorem 2 discharged over *all* interleavings at once via a
//!    may-conflict graph over breakpoint-free segments, refined to a
//!    **per-universe lattice** (one verdict per top-level nest class,
//!    with orientation-consistency pruning of spurious backward edges);
//!    any certified universe mints a [`mla_core::StaticCert`] that lets
//!    the `mla-cc` schedulers skip incremental closure maintenance for
//!    that universe's transactions.
//!
//! The `mla-lint` binary runs all three passes over the shipped
//! workloads and renders a human table or JSON.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod certify;
pub mod diag;
pub mod profile;
pub mod smells;
pub mod wellformed;

pub use certify::{certify_workload, Certification};
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use profile::TxnProfile;

use mla_workload::Workload;

/// Runs all three passes over a workload and assembles the report.
pub fn analyze(workload: &Workload) -> Report {
    let mut diagnostics = wellformed::run(workload);
    diagnostics.extend(smells::run(workload));
    let certification = certify_workload(workload);
    diagnostics.extend(certification.diagnostics);
    let (universe_count, certified_universes) = certification
        .lattice
        .as_ref()
        .map(|l| (l.universe_count(), l.certified_universes()))
        .unwrap_or((0, Vec::new()));
    let mut report = Report {
        workload: workload.name.clone(),
        k: workload.nest.k(),
        txn_count: workload.txn_count(),
        certified: certification
            .lattice
            .as_ref()
            .is_some_and(|l| l.fully_certified()),
        universe_count,
        certified_universes,
        diagnostics,
    };
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_workload::{banking, mixed, partitioned};

    #[test]
    fn partitioned_report_is_certified_and_clean_of_warnings() {
        let wl = partitioned::generate(partitioned::PartitionedConfig::default()).workload;
        let report = analyze(&wl);
        assert!(report.certified);
        assert!(!report.has_errors());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::CertIssued));
        assert!(report.render().contains("MLA020"));
        assert!(report.to_json().contains("\"certified\":true"));
    }

    #[test]
    fn mixed_report_is_partially_certified() {
        let wl = mixed::generate(mixed::MixedConfig::default()).workload;
        let report = analyze(&wl);
        assert!(!report.certified, "two universes are condemned");
        assert_eq!(report.universe_count, 3);
        assert!(!report.certified_universes.is_empty());
        assert!(report.render().contains("partially certified"));
        assert!(report.to_json().contains("\"universes\":3"));
    }

    #[test]
    fn banking_report_carries_the_denial() {
        let wl = banking::generate(banking::BankingConfig::default()).workload;
        let report = analyze(&wl);
        assert!(!report.certified);
        assert!(!report.has_errors(), "the shipped spec is well-formed");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::CertDenied));
    }
}
