//! Static per-transaction profiles: what the analyzer can know about a
//! transaction's entity accesses and guaranteed breakpoints without
//! running it.
//!
//! Two precision tiers, both *sound under-approximations of breakpoints*
//! and *over-approximations of accesses*:
//!
//! * [`TxnProfile::Exact`] — the program is straight-line
//!   ([`Program::step_entities`]): the access sequence is known per
//!   position, and between consecutive steps we record the breakpoint
//!   level guaranteed there in every run
//!   ([`RuntimeBreakpoints::guaranteed_level_after`]).
//! * [`TxnProfile::Blob`] — only a may-footprint is known
//!   ([`Program::may_footprint`]): a set of entities the transaction
//!   touches *at most once each*, in unknown order, with at best a
//!   uniform breakpoint-density guarantee
//!   ([`RuntimeBreakpoints::uniform_guarantee`]).
//!
//! Real runs can only have *more* breakpoints than the profile records,
//! so segments at every level are finer at runtime than in the model —
//! the coherent closure of any real run is contained in the modeled one.
//! That monotonicity is what makes the certification pass sound.

use mla_model::{EntityId, Program};
use mla_txn::RuntimeBreakpoints;

/// What is statically known about one transaction's runs.
#[derive(Clone, Debug)]
pub enum TxnProfile {
    /// Straight-line program: exact access sequence and the breakpoint
    /// levels guaranteed between consecutive steps.
    Exact {
        /// `steps[i]` is the entity accessed by step `i` of every run.
        steps: Vec<EntityId>,
        /// `boundaries[i]` is the minimum breakpoint level guaranteed
        /// between steps `i` and `i+1` in every run (`None` = nothing
        /// guaranteed there). Length `steps.len() - 1` (empty for
        /// programs of at most one step).
        boundaries: Vec<Option<usize>>,
    },
    /// Branching program with a known may-footprint.
    Blob {
        /// Entities any run may touch — each at most once.
        entities: Vec<EntityId>,
        /// A level `l` such that every non-final prefix of every run is
        /// followed by a breakpoint of level `<= l`, if one is
        /// guaranteed.
        uniform: Option<usize>,
    },
}

impl TxnProfile {
    /// Builds the most precise profile the program and breakpoint
    /// structure expose, or `None` when even the footprint is unknown
    /// (which makes static certification impossible for the workload).
    pub fn build(program: &dyn Program, bp: &dyn RuntimeBreakpoints) -> Option<TxnProfile> {
        if let Some(steps) = program.step_entities() {
            let boundaries = (1..steps.len())
                .map(|pos| bp.guaranteed_level_after(pos))
                .collect();
            return Some(TxnProfile::Exact { steps, boundaries });
        }
        program.may_footprint().map(|entities| TxnProfile::Blob {
            entities,
            uniform: bp.uniform_guarantee(),
        })
    }

    /// The transaction's may-footprint, sorted and deduplicated.
    pub fn footprint(&self) -> Vec<EntityId> {
        let mut fp = match self {
            TxnProfile::Exact { steps, .. } => steps.clone(),
            TxnProfile::Blob { entities, .. } => entities.clone(),
        };
        fp.sort_unstable();
        fp.dedup();
        fp
    }

    /// Number of access slots (exact: one per step; blob: one per
    /// footprint entity).
    pub fn slot_count(&self) -> usize {
        match self {
            TxnProfile::Exact { steps, .. } => steps.len(),
            TxnProfile::Blob { entities, .. } => entities.len(),
        }
    }

    /// The slots (step positions or footprint indices) accessing
    /// `entity`.
    pub fn slots_on(&self, entity: EntityId) -> Vec<usize> {
        match self {
            TxnProfile::Exact { steps, .. } => steps
                .iter()
                .enumerate()
                .filter(|(_, &e)| e == entity)
                .map(|(i, _)| i)
                .collect(),
            TxnProfile::Blob { entities, .. } => entities
                .iter()
                .enumerate()
                .filter(|(_, &e)| e == entity)
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// The last slot of the level-`level` segment containing `slot`: the
    /// walk forward stops at the first inter-step boundary *guaranteed*
    /// to carry a breakpoint of level `<= level` (a breakpoint of
    /// minimum level `g` bounds the `B_t(i)` segments for every
    /// `i >= g`). Blobs are a single segment.
    pub fn seg_end(&self, slot: usize, level: usize) -> usize {
        match self {
            TxnProfile::Exact { steps, boundaries } => {
                let mut j = slot;
                while j + 1 < steps.len() && boundaries[j].is_none_or(|g| g > level) {
                    j += 1;
                }
                j
            }
            TxnProfile::Blob { entities, .. } => entities.len().saturating_sub(1),
        }
    }

    /// Whether a closure path arriving at slot `a_in` can exit through
    /// the access at slot `a_out` when the conflicting partner is
    /// related at `level`. Forward travel (`a_out >= a_in`) is plain
    /// program order; backward travel exists only when condition (b)
    /// lifts span the gap — i.e. `a_in` still lies inside `a_out`'s
    /// level-`level` segment.
    pub fn can_traverse(&self, a_in: usize, a_out: usize, level: usize) -> bool {
        match self {
            TxnProfile::Exact { .. } => a_out >= a_in || self.seg_end(a_out, level) >= a_in,
            // A blob's internal order is unknown: some run may place
            // any pair of distinct accesses in either order.
            TxnProfile::Blob { .. } => true,
        }
    }

    /// Whether the `a_in -> a_out` traversal can be *backward in time*
    /// (exit access performed before the arrival access): that is the
    /// only way a closure cycle can close, so these traversals are what
    /// certification must rule out of cycles.
    pub fn backward_traverse(&self, a_in: usize, a_out: usize, level: usize) -> bool {
        match self {
            TxnProfile::Exact { .. } => a_out < a_in && self.seg_end(a_out, level) >= a_in,
            // Distinct blob accesses may occur in either order; a
            // uniform breakpoint guarantee at `<= level` makes every
            // level-`level` segment a single step, leaving no lift to
            // carry a path backward.
            TxnProfile::Blob { uniform, .. } => a_in != a_out && uniform.is_none_or(|u| u > level),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_txn::{NoBreakpoints, PhaseTable};

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    #[test]
    fn script_programs_profile_exactly() {
        let p = ScriptProgram::new(vec![Add(e(5), 1), Add(e(7), 1), Add(e(5), -1)]);
        let bp = PhaseTable::new(3, [(1, 2)]);
        let prof = TxnProfile::build(&p, &bp).expect("script is straight-line");
        match &prof {
            TxnProfile::Exact { steps, boundaries } => {
                assert_eq!(steps, &[e(5), e(7), e(5)]);
                assert_eq!(boundaries, &[Some(2), None]);
            }
            _ => panic!("expected exact profile"),
        }
        assert_eq!(prof.footprint(), vec![e(5), e(7)]);
        assert_eq!(prof.slots_on(e(5)), vec![0, 2]);
        // The level-2 segment after slot 0 ends at the guaranteed
        // boundary; at the (nonexistent) level 1 it would run on, but
        // levels below 2 never carry breakpoints anyway.
        assert_eq!(prof.seg_end(0, 2), 0);
        assert_eq!(prof.seg_end(0, 1), 2);
        assert_eq!(prof.seg_end(1, 2), 2);
        // Backward travel from slot 2 back to slot 0 needs slot 0's
        // segment to still cover slot 2: true at level 1, cut at level 2.
        assert!(prof.backward_traverse(2, 0, 1));
        assert!(!prof.backward_traverse(2, 0, 2));
        assert!(prof.can_traverse(0, 2, 2), "forward is always fine");
    }

    #[test]
    fn atomic_scripts_have_whole_txn_segments() {
        let p = ScriptProgram::new(vec![Add(e(0), 1), Add(e(1), 1)]);
        let prof = TxnProfile::build(&p, &NoBreakpoints { k: 4 }).unwrap();
        assert_eq!(prof.seg_end(0, 3), 1, "no guaranteed boundary anywhere");
        assert!(prof.backward_traverse(1, 0, 3));
    }

    #[test]
    fn blob_backwardness_follows_uniform_guarantee() {
        let blob = TxnProfile::Blob {
            entities: vec![e(1), e(2), e(3)],
            uniform: Some(3),
        };
        assert!(blob.can_traverse(2, 0, 1));
        assert!(!blob.backward_traverse(0, 0, 1), "same access, no pair");
        assert!(
            blob.backward_traverse(2, 0, 1),
            "level-1 segments can span steps"
        );
        assert!(
            !blob.backward_traverse(2, 0, 3),
            "uniform level-3 breakpoints make level-3 segments singletons"
        );
        let loose = TxnProfile::Blob {
            entities: vec![e(1), e(2)],
            uniform: None,
        };
        assert!(loose.backward_traverse(1, 0, 3));
    }
}
