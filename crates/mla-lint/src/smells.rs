//! Pass 2 — spec smells: structure that is legal but buys nothing, the
//! multilevel analogue of dead code.
//!
//! * `MLA010` — a nest level whose partition repeats the previous
//!   level's (§4.2's chain `π(1) ⊇ … ⊇ π(k)` is non-strict there): the
//!   level can be removed without changing which interleavings are
//!   permitted.
//! * `MLA011` — singleton classes at a mid level: those transactions
//!   have no partners at that intimacy, so the finer level's extra
//!   interleaving freedom is unused by them.
//! * `MLA012` — a transaction declares (guarantees) breakpoints at a
//!   level `l` although no other transaction is related to it at level
//!   `>= l`: no `B_t(i)` segment boundary they create is ever visible
//!   to a partner, so they can never enable an interleaving.

use mla_model::TxnId;
use mla_workload::Workload;

use crate::diag::{Code, Diagnostic, Severity, Span};

/// Runs the smells pass.
pub fn run(w: &Workload) -> Vec<Diagnostic> {
    let nest = &w.nest;
    let k = nest.k();
    let mut diags = Vec::new();
    for i in nest.degenerate_levels() {
        diags.push(Diagnostic::new(
            Code::DegenerateLevel,
            Severity::Warning,
            Span::Level(i),
            format!(
                "π({i}) equals π({}) as a partition: the level adds no distinctions \
                 and the nest is observationally {}-deep",
                i - 1,
                k - 1
            ),
        ));
    }
    for i in 2..k {
        let singles = nest.classes_at(i).iter().filter(|c| c.len() == 1).count();
        if singles > 0 {
            diags.push(Diagnostic::new(
                Code::SingletonClasses,
                Severity::Note,
                Span::Level(i),
                format!(
                    "{singles} singleton class(es) at level {i}: those transactions \
                     have no partners this closely related"
                ),
            ));
        }
    }
    // MLA012 needs each transaction's declared breakpoint levels; only
    // statically visible declarations (guarantees) can be judged.
    for (t, (program, bp)) in w.programs.iter().zip(&w.breakpoints).enumerate() {
        if bp.k() != k {
            continue; // MLA001 already owns this transaction.
        }
        let txn = TxnId(t as u32);
        let mut declared: Vec<usize> = Vec::new();
        if let Some(u) = bp.uniform_guarantee() {
            declared.push(u);
        }
        if let Some(entities) = program.step_entities() {
            for pos in 1..entities.len() {
                if let Some(g) = bp.guaranteed_level_after(pos) {
                    declared.push(g);
                }
            }
        }
        declared.retain(|l| (2..k).contains(l));
        declared.sort_unstable();
        declared.dedup();
        if declared.is_empty() {
            continue;
        }
        let max_partner_level = (0..w.txn_count())
            .filter(|&u| u != t)
            .map(|u| nest.level(txn, TxnId(u as u32)))
            .max()
            .unwrap_or(1);
        for l in declared {
            if l > max_partner_level {
                diags.push(Diagnostic::new(
                    Code::NeverEnabledBreakpoint,
                    Severity::Warning,
                    Span::Txn(txn),
                    format!(
                        "declares breakpoints at level {l} but its closest partner \
                         is at level {max_partner_level}: they can never enable an \
                         interleaving"
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::{EntityId, Program};
    use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};
    use std::sync::Arc;

    fn toy(k: usize, bps: Vec<Arc<dyn RuntimeBreakpoints>>, paths: Vec<Vec<u32>>) -> Workload {
        let n = bps.len();
        Workload {
            name: "toy".into(),
            nest: Nest::new(k, paths).unwrap(),
            programs: (0..n)
                .map(|_| {
                    Arc::new(ScriptProgram::new(vec![
                        Add(EntityId(0), 1),
                        Add(EntityId(1), 1),
                    ])) as Arc<dyn Program + Send + Sync>
                })
                .collect(),
            breakpoints: bps,
            initial: vec![(EntityId(0), 0), (EntityId(1), 0)],
            arrivals: vec![0; n],
        }
    }

    #[test]
    fn degenerate_level_and_singletons_reported() {
        // Two txns in distinct level-2 classes: pi(3) repeats pi(2)
        // (both already singleton), which also makes level 2 all
        // singletons.
        let wl = toy(
            4,
            vec![
                Arc::new(NoBreakpoints { k: 4 }),
                Arc::new(NoBreakpoints { k: 4 }),
            ],
            vec![vec![0, 0], vec![1, 1]],
        );
        let diags = run(&wl);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::DegenerateLevel));
        assert!(codes.contains(&Code::SingletonClasses));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::DegenerateLevel && d.span == Span::Level(3)));
    }

    #[test]
    fn never_enabled_breakpoints_warn() {
        // t0 breaks at level 3 but its only partner sits at level 2.
        let wl = toy(
            4,
            vec![
                Arc::new(PhaseTable::new(4, [(1, 3)])),
                Arc::new(NoBreakpoints { k: 4 }),
            ],
            vec![vec![0, 0], vec![0, 1]],
        );
        let diags = run(&wl);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::NeverEnabledBreakpoint && d.span == Span::Txn(TxnId(0))));
        // The same declaration with a level-3 partner is fine.
        let wl = toy(
            4,
            vec![
                Arc::new(PhaseTable::new(4, [(1, 3)])),
                Arc::new(NoBreakpoints { k: 4 }),
            ],
            vec![vec![0, 0], vec![0, 0]],
        );
        assert!(run(&wl)
            .iter()
            .all(|d| d.code != Code::NeverEnabledBreakpoint));
    }
}
