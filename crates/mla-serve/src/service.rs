//! The transaction service: OS threads racing through MVCC storage with
//! a §6 scheduler gating every step's admission.
//!
//! # Architecture
//!
//! ```text
//!  worker 0 ──┐                      ┌── GC thread (epoch frontier)
//!  worker 1 ──┤   ┌─────────────┐    │
//!    ...      ├──▶│ Gate (mutex) │◀──┴── snapshot readers (pins)
//!  worker W ──┘   │  scheduler   │
//!      │          │  slots       │          ┌───────────┐
//!      └─ latch ─▶│  history     │─ install▶│ MvccStore │
//!                 └─────────────┘           └───────────┘
//! ```
//!
//! * Each **worker** (thread-per-core front-end) owns the sessions with
//!   `session % workers == worker`, round-robinning one step attempt per
//!   session per pass, plus the shared retry queue of cascade-undone
//!   transactions.
//! * A step attempt first takes the **entity latch** (exclusive, FIFO),
//!   then the **gate** — a single mutex holding the scheduler, the
//!   per-transaction slots, and the live ticket-ordered history. The
//!   scheduler decides through [`AdmissionView`]; a grant assigns the
//!   next global ticket and installs the version *before* the gate is
//!   released, so per-entity tickets are monotone (the latch serializes
//!   same-entity attempts, the gate serializes ticket draws).
//! * An **abort** rolls back the victims plus every transaction with a
//!   version installed above a victim's version — the cascading-undo
//!   closure, version-chain edition. Cascade-undone transactions whose
//!   sessions already moved on (they had tentatively committed — the §6
//!   commit hazard) go to the retry queue.
//! * The **GC thread** folds versions below
//!   `min(first ticket of any running transaction, reader pins)` — below
//!   that, no snapshot read and no undo can ever look.
//! * **Snapshot readers** pin a ticket and verify the snapshot there is
//!   stable while GC runs underneath them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mla_cc::{AdmissionView, Decision, MlaDetect, MlaPrevent};
use mla_core::nest::Nest;
use mla_model::{EntityId, Step, TxnId, Value};
use mla_storage::{EpochRegistry, LatchMode, LatchTree, MvccStore};
use mla_txn::{TxnInstance, TxnProfile};

use crate::workload::ServeLoad;

/// Which §6 scheduler gates admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// Optimistic: closure-cycle detection with rollback.
    Detect,
    /// Pessimistic: step delay at breakpoints plus waits-for deadlock
    /// resolution.
    Prevent,
}

/// The scheduler behind the gate. Both variants expose the same
/// `*_view` admission surface; [`MlaDetect`] has no commit bookkeeping.
pub enum Sched {
    /// [`MlaDetect`] (§6 detection).
    Detect(MlaDetect),
    /// [`MlaPrevent`] (§6 prevention).
    Prevent(MlaPrevent),
}

impl Sched {
    fn decide<V: AdmissionView + ?Sized>(&mut self, t: TxnId, view: &V) -> Decision {
        match self {
            Sched::Detect(s) => s.decide_view(t, view),
            Sched::Prevent(s) => s.decide_view(t, view),
        }
    }

    fn performed(&mut self, step: &Step) {
        match self {
            Sched::Detect(s) => s.performed_view(step),
            Sched::Prevent(s) => s.performed_view(step),
        }
    }

    fn committed(&mut self, t: TxnId) {
        match self {
            Sched::Detect(_) => {}
            Sched::Prevent(s) => s.committed_view(t),
        }
    }

    fn aborted(&mut self, t: TxnId) {
        match self {
            Sched::Detect(s) => s.aborted_view(t),
            Sched::Prevent(s) => s.aborted_view(t),
        }
    }

    fn certified_skips(&self) -> u64 {
        match self {
            Sched::Detect(s) => s.certified_skips(),
            Sched::Prevent(s) => s.certified_skips(),
        }
    }

    fn certified_skips_per_universe(&self) -> Vec<u64> {
        match self {
            Sched::Detect(s) => s.certified_skips_per_universe(),
            Sched::Prevent(s) => s.certified_skips_per_universe(),
        }
    }

    fn cert_re_arms(&self) -> u64 {
        match self {
            Sched::Detect(_) => 0,
            Sched::Prevent(s) => s.cert_re_arms(),
        }
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Which scheduler gates admission.
    pub sched: SchedKind,
    /// Worker threads (thread-per-core front-end; sessions are dealt
    /// round-robin across them).
    pub workers: usize,
    /// Closure-engine entity shards (1 = unsharded).
    pub shards: usize,
    /// Wait-graph partitions for [`MlaPrevent`] (1 = one global graph).
    pub wait_shards: usize,
    /// Attach the workload's static certificate (when it earns one) so
    /// grants ride the certified fast path.
    pub certified: bool,
    /// MVCC lock shards.
    pub store_shards: usize,
    /// Concurrent snapshot-stability reader threads.
    pub snapshot_readers: usize,
    /// GC cadence; `None` disables the GC thread.
    pub gc_interval: Option<Duration>,
    /// Abandon the run after this long (a liveness backstop for tests;
    /// the report marks the timeout).
    pub deadline: Duration,
    /// Force-abort one running transaction when no commit lands for this
    /// long. Sessions execute their streams in order, so a deferred
    /// transaction can transitively wait on one whose *session* is stuck
    /// behind another deferred transaction — a cross-session deadlock the
    /// scheduler's transaction-level waits-for graph cannot see. The
    /// stall breaker is the classic timeout answer.
    pub stall_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sched: SchedKind::Prevent,
            workers: 4,
            shards: 1,
            wait_shards: 1,
            certified: false,
            store_shards: 16,
            snapshot_readers: 2,
            gc_interval: Some(Duration::from_millis(1)),
            deadline: Duration::from_secs(60),
            stall_timeout: Duration::from_millis(250),
        }
    }
}

/// Lifecycle of a transaction slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Not yet attempted (or rolled back, awaiting restart).
    Idle,
    /// Mid-program: holds an instance with performed steps.
    Running,
    /// All steps performed. Still undoable by a cascade until the run
    /// drains (the §6 commit hazard); final once nothing is running.
    Committed,
}

/// Per-transaction state behind the gate.
struct Slot {
    instance: Option<TxnInstance>,
    /// Installed versions of the current incarnation, in ticket order.
    records: Vec<(EntityId, u64)>,
    /// Ticket of the incarnation's first installed version.
    first_ticket: Option<u64>,
    state: SlotState,
    /// Committed and provably beyond the reach of any future cascade
    /// (GC's sealing pass); undo records are dropped at that point.
    sealed: bool,
    /// First attempt of the first incarnation (latency measurement).
    started: Option<Instant>,
    restarts: u32,
}

impl Slot {
    fn new() -> Self {
        Slot {
            instance: None,
            records: Vec::new(),
            first_ticket: None,
            state: SlotState::Idle,
            sealed: false,
            started: None,
            restarts: 0,
        }
    }
}

/// Everything the single gate mutex protects.
struct Gate {
    nest: Nest,
    sched: Sched,
    slots: Vec<Slot>,
    /// Live history in ticket order: steps of running and
    /// tentatively-committed transactions (undone steps are retained out).
    history: Vec<Step>,
    /// Next global admission ticket (starts at 1; fresh MVCC chains have
    /// head ticket 0).
    next_ticket: u64,
    /// Transactions undone after tentatively committing, awaiting re-run.
    retries: VecDeque<TxnId>,
    /// Transactions currently in [`SlotState::Committed`] (net of
    /// cascade undo; equals the final commit count on a clean drain).
    commits: u64,
    aborts: u64,
    cascade_undone_commits: u64,
    defers: u64,
    /// Bumped once per cascade (snapshot readers use it to tell GC
    /// instability from abort instability).
    undo_epoch: u64,
    /// When the last commit landed (the stall breaker's clock).
    last_commit: Instant,
    /// Cross-session deadlocks broken by the stall watchdog.
    stall_breaks: u64,
    latencies_us: Vec<u64>,
}

/// The scheduler's read-only view of the gate: disjoint borrows so
/// `sched` stays mutably borrowed while the view reads slots and
/// history.
struct GateView<'a> {
    nest: &'a Nest,
    slots: &'a [Slot],
    history: &'a [Step],
}

impl AdmissionView for GateView<'_> {
    fn nest(&self) -> &Nest {
        self.nest
    }

    fn is_committed(&self, t: TxnId) -> bool {
        self.slots[t.index()].state == SlotState::Committed
    }

    fn is_finished(&self, t: TxnId) -> bool {
        self.slots[t.index()]
            .instance
            .as_ref()
            .is_some_and(TxnInstance::is_finished)
    }

    fn performed_seq(&self, t: TxnId) -> u32 {
        self.slots[t.index()]
            .instance
            .as_ref()
            .map_or(0, TxnInstance::seq)
    }

    fn at_breakpoint(&self, t: TxnId, level: usize) -> bool {
        // An idle transaction sits before its first step — a breakpoint
        // of every level.
        self.slots[t.index()]
            .instance
            .as_ref()
            .is_none_or(|i| i.at_breakpoint(level))
    }

    fn candidate(&self, t: TxnId) -> Step {
        let inst = self.slots[t.index()]
            .instance
            .as_ref()
            .expect("candidate of a transaction without a live instance");
        Step {
            txn: t,
            seq: inst.seq(),
            entity: inst.next_entity().expect("candidate for a live step"),
            observed: 0,
            wrote: 0,
        }
    }

    fn history_steps(&self) -> Vec<Step> {
        self.history.to_vec()
    }
}

/// Outcome of one step attempt (worker scheduling feedback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Attempt {
    /// Step performed; transaction still has more.
    Progressed,
    /// Step performed and it was the last: tentatively committed.
    Committed,
    /// Scheduler said wait; retry later.
    Deferred,
    /// The transaction was rolled back (as requester-victim or by a
    /// concurrent cascade); it restarts from scratch.
    Aborted,
    /// Already committed (a stale retry-queue entry).
    Done,
}

/// Run summary.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Workload label.
    pub load: String,
    /// Scheduler label (`mla-detect` / `mla-prevent`).
    pub sched: String,
    /// Worker threads.
    pub workers: usize,
    /// Client sessions.
    pub sessions: usize,
    /// Transactions committed (== workload size on a clean drain).
    pub committed: u64,
    /// Rollbacks (scheduler victims plus cascade).
    pub aborts: u64,
    /// Tentative commits undone by a later cascade (§6 commit hazard).
    pub commit_hazards: u64,
    /// Deferred step attempts.
    pub defers: u64,
    /// Wall-clock of the drain.
    pub wall: Duration,
    /// Wall-clock of static certification (zero when not requested).
    pub cert_wall: Duration,
    /// Whether a static certificate was attached.
    pub certified: bool,
    /// Admissions granted on the certificate fast path.
    pub certified_skips: u64,
    /// The same fast-path grants split per universe of the certificate
    /// lattice (empty without a certificate).
    pub certified_skips_per_universe: Vec<u64>,
    /// Universes re-armed after an off-footprint void (`MlaPrevent`
    /// only).
    pub cert_re_arms: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Commit latency percentiles, microseconds (first attempt → final
    /// commit).
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Latch acquisitions and waits.
    pub latch_acquisitions: u64,
    /// Latch acquisitions that blocked.
    pub latch_waits: u64,
    /// Versions folded by epoch GC.
    pub gc_folded: u64,
    /// GC passes run.
    pub gc_passes: u64,
    /// Snapshot-stability checks performed.
    pub snapshot_checks: u64,
    /// Snapshot-stability violations (must be 0).
    pub snapshot_violations: u64,
    /// Cross-session deadlocks broken by the stall watchdog.
    pub stall_breaks: u64,
    /// Live (unfolded) versions left at drain.
    pub live_versions: usize,
    /// Whether the drain finished before the deadline.
    pub clean: bool,
    /// The final ticket-ordered committed history (oracle audits).
    pub history: Vec<Step>,
}

impl ServeReport {
    /// One human-readable summary block.
    pub fn render(&self) -> String {
        format!(
            "{load} via {sched} — {workers} workers, {sessions} sessions\n\
             committed   {committed} txns in {wall:.3?} ({tp:.0} txn/s){dirty}\n\
             latency     p50 {p50} µs, p95 {p95} µs, p99 {p99} µs\n\
             conflicts   {aborts} rollbacks ({hazards} undone commits), {defers} defers, \
             {stalls} stall breaks\n\
             latches     {lacq} acquisitions, {lw} blocked\n\
             gc          {folded} versions folded in {passes} passes, {live} live at drain\n\
             snapshots   {checks} checks, {viol} violations\n\
             certificate {skips} fast-path grants{per}, {rearms} re-arms",
            load = self.load,
            sched = self.sched,
            workers = self.workers,
            sessions = self.sessions,
            committed = self.committed,
            wall = self.wall,
            tp = self.throughput,
            dirty = if self.clean { "" } else { "  [DEADLINE HIT]" },
            p50 = self.p50_us,
            p95 = self.p95_us,
            p99 = self.p99_us,
            aborts = self.aborts,
            hazards = self.commit_hazards,
            defers = self.defers,
            stalls = self.stall_breaks,
            lacq = self.latch_acquisitions,
            lw = self.latch_waits,
            folded = self.gc_folded,
            passes = self.gc_passes,
            live = self.live_versions,
            checks = self.snapshot_checks,
            viol = self.snapshot_violations,
            skips = self.certified_skips,
            per = if self.certified_skips_per_universe.is_empty() {
                String::new()
            } else {
                format!(
                    " (per universe: {})",
                    self.certified_skips_per_universe
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join("/")
                )
            },
            rearms = self.cert_re_arms,
        )
    }
}

/// The shared service state all threads operate on.
struct Service {
    gate: Mutex<Gate>,
    latches: LatchTree,
    mvcc: MvccStore,
    epochs: EpochRegistry,
    profiles: Vec<TxnProfile>,
    /// Set once every transaction has committed (or the deadline hit).
    shutdown: AtomicBool,
    gc_folded: AtomicU64,
    gc_passes: AtomicU64,
    snapshot_checks: AtomicU64,
    snapshot_violations: AtomicU64,
}

impl Service {
    /// One admission attempt for transaction `t`: latch its next entity,
    /// consult the scheduler under the gate, and on a grant install the
    /// version at a fresh ticket.
    fn step_once(&self, t: TxnId) -> Attempt {
        // Phase 1 (gate): materialize the incarnation and find the next
        // entity.
        let entity = {
            let mut g = self.gate.lock().expect("gate poisoned");
            let slot = &mut g.slots[t.index()];
            match slot.state {
                SlotState::Committed => return Attempt::Done,
                SlotState::Idle => {
                    slot.instance = Some(self.profiles[t.index()].instantiate());
                    slot.state = SlotState::Running;
                    slot.started.get_or_insert_with(Instant::now);
                }
                SlotState::Running => {}
            }
            let inst = slot.instance.as_ref().expect("running slot has instance");
            inst.next_entity().expect("running slot has a next step")
        };

        // Phase 2: exclusive entity latch — serializes same-entity
        // admission so ticket order is per-entity monotone. Taken
        // *outside* the gate: latch waits must not block the gate.
        let _latch = self.latches.acquire_point(entity, LatchMode::Exclusive);

        // Phase 3 (gate): decide and, on grant, ticket + install.
        let mut g = self.gate.lock().expect("gate poisoned");
        {
            // Revalidate: a cascade may have rolled `t` back while we
            // waited on the latch.
            let slot = &g.slots[t.index()];
            if slot.state != SlotState::Running
                || slot.instance.as_ref().and_then(TxnInstance::next_entity) != Some(entity)
            {
                return Attempt::Aborted;
            }
        }
        // Decide loop: an Abort decision rolls its victims back and
        // *immediately* re-decides under the same gate lock. Dropping the
        // gate between the cascade and the retry is a livelock — the
        // restarted victim's session re-admits its steps first (it polls
        // tightly) and the next decide names the same victim again. The
        // gate is held, so nothing can re-enter between cascade and
        // re-decide; each iteration either grants, defers, kills the
        // requester, or strictly shrinks the set of live victim records,
        // so the loop is bounded by the slot count.
        for _round in 0..=g.slots.len() {
            let decision = {
                let Gate {
                    sched,
                    nest,
                    slots,
                    history,
                    ..
                } = &mut *g;
                let view = GateView {
                    nest,
                    slots,
                    history,
                };
                sched.decide(t, &view)
            };
            match decision {
                Decision::Grant => {
                    let ticket = g.next_ticket;
                    g.next_ticket += 1;
                    let observed = self.mvcc.latest(entity).1;
                    let slot = &mut g.slots[t.index()];
                    let step = slot
                        .instance
                        .as_mut()
                        .expect("revalidated above")
                        .perform(observed);
                    debug_assert_eq!(step.entity, entity);
                    self.mvcc.install(entity, ticket, t, step.wrote);
                    slot.records.push((entity, ticket));
                    slot.first_ticket.get_or_insert(ticket);
                    let finished = slot
                        .instance
                        .as_ref()
                        .expect("just performed")
                        .is_finished();
                    g.history.push(step);
                    g.sched.performed(&step);
                    return if finished {
                        let slot = &mut g.slots[t.index()];
                        slot.state = SlotState::Committed;
                        let latency = slot
                            .started
                            .expect("started at first attempt")
                            .elapsed()
                            .as_micros() as u64;
                        g.sched.committed(t);
                        g.commits += 1;
                        g.last_commit = Instant::now();
                        g.latencies_us.push(latency);
                        Attempt::Committed
                    } else {
                        Attempt::Progressed
                    };
                }
                Decision::Defer => {
                    g.defers += 1;
                    return Attempt::Deferred;
                }
                Decision::Abort(victims) => {
                    if self.cascade_abort(&mut g, &victims, t) {
                        return Attempt::Aborted;
                    }
                    // Victims are gone and the gate never dropped:
                    // re-decide now, before their sessions can re-admit.
                }
            }
        }
        // The scheduler kept naming fresh victims past the bound —
        // treat as a defer and let the session re-poll.
        g.defers += 1;
        Attempt::Deferred
    }

    /// Rolls back `victims` plus the full undo cascade: any transaction
    /// holding a version above a rolled-back version must roll back too
    /// (it read through that version). Removal runs in descending global
    /// ticket order, so every removal is a chain-head pop. Returns
    /// whether `requester` was rolled back.
    fn cascade_abort(&self, g: &mut Gate, victims: &[TxnId], requester: TxnId) -> bool {
        let mut doomed: Vec<bool> = vec![false; g.slots.len()];
        let mut frontier: Vec<TxnId> = Vec::new();
        for &v in victims {
            // A sealed transaction's versions are folded into the chain
            // base: its commit is permanent and there is nothing left to
            // undo. The scheduler may still name it (its steps can sit in
            // the live window past GC's floor), but it cannot be a victim.
            if g.slots[v.index()].sealed {
                continue;
            }
            if !doomed[v.index()] {
                doomed[v.index()] = true;
                frontier.push(v);
            }
        }
        // Every named victim was sealed: break the cycle from the other
        // end by rolling back the requester, which is running and
        // therefore always undoable.
        if frontier.is_empty() {
            doomed[requester.index()] = true;
            frontier.push(requester);
        }
        // Fixpoint over "has a version above a doomed version".
        while let Some(v) = frontier.pop() {
            for &(e, ticket) in &g.slots[v.index()].records {
                for (i, slot) in g.slots.iter().enumerate() {
                    if doomed[i] {
                        continue;
                    }
                    if slot.records.iter().any(|&(oe, ot)| oe == e && ot > ticket) {
                        doomed[i] = true;
                        frontier.push(TxnId(i as u32));
                    }
                }
            }
        }
        // Undo every doomed version, newest first across all entities.
        let mut removals: Vec<(EntityId, u64)> = Vec::new();
        for (i, slot) in g.slots.iter().enumerate() {
            if doomed[i] {
                removals.extend_from_slice(&slot.records);
            }
        }
        removals.sort_unstable_by_key(|r| std::cmp::Reverse(r.1));
        for (e, ticket) in removals {
            self.mvcc.remove(e, ticket);
        }
        g.history.retain(|s| !doomed[s.txn.index()]);
        g.undo_epoch += 1;
        // Reset the doomed slots; tentatively-committed victims re-run
        // via the retry queue (their sessions have moved on).
        for (i, d) in doomed.iter().enumerate() {
            if !*d {
                continue;
            }
            let t = TxnId(i as u32);
            let was_committed = g.slots[i].state == SlotState::Committed;
            if was_committed {
                g.commits -= 1;
                g.cascade_undone_commits += 1;
                g.retries.push_back(t);
            }
            let slot = &mut g.slots[i];
            slot.instance = None;
            slot.records.clear();
            slot.first_ticket = None;
            slot.state = SlotState::Idle;
            slot.restarts += 1;
            g.aborts += 1;
            g.sched.aborted(t);
        }
        doomed[requester.index()]
    }

    /// One epoch-GC pass: fold versions no snapshot and no undo can
    /// reach. The frontier is computed under the gate (serializing with
    /// reader pins, which are also taken under the gate); the fold runs
    /// outside it.
    ///
    /// Taint analysis for the undo floor: doom roots at versions of
    /// running transactions, climbs same-entity chains upward in ticket
    /// order, and jumps to *all* versions of any transaction it reaches —
    /// including low-ticket versions on other entities (the §6 commit
    /// hazard, version-chain edition). So the floor starts at the
    /// smallest running first ticket and drags down through every
    /// committed transaction straddling it, to a fixpoint. A committed
    /// transaction wholly below the final floor can never be reached by a
    /// future cascade *climb* (new doom roots only appear at higher
    /// tickets), so it is **sealed**: its undo records drop and versions
    /// below the floor become foldable. The one remaining reach — the
    /// scheduler naming it as an explicit victim while its steps still
    /// sit in the live window — is closed on the other side:
    /// [`cascade_abort`](Service::cascade_abort) refuses sealed victims.
    fn gc_pass(&self) {
        let frontier = {
            let mut g = self.gate.lock().expect("gate poisoned");
            let mut floor = g
                .slots
                .iter()
                .filter(|s| s.state == SlotState::Running)
                .filter_map(|s| s.first_ticket)
                .min()
                .unwrap_or(g.next_ticket);
            loop {
                let mut changed = false;
                for s in &g.slots {
                    if s.state != SlotState::Committed || s.sealed {
                        continue;
                    }
                    if let (Some(first), Some(&(_, last))) = (s.first_ticket, s.records.last()) {
                        if last >= floor && first < floor {
                            floor = first;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for s in &mut g.slots {
                if s.state == SlotState::Committed
                    && !s.sealed
                    && s.records.last().is_none_or(|&(_, last)| last < floor)
                {
                    s.sealed = true;
                    s.records = Vec::new();
                    s.first_ticket = None;
                }
            }
            self.epochs.frontier(floor)
        };
        let folded = self.mvcc.gc_before(frontier);
        self.gc_folded.fetch_add(folded as u64, Ordering::Relaxed);
        self.gc_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// The stall breaker: when no commit has landed for `timeout`,
    /// force-abort the running transaction with the fewest installed
    /// versions (cheapest undo). Sessions run their streams in order, so
    /// deferred transactions can deadlock *through* sessions in a way the
    /// scheduler's transaction-level waits-for graph cannot observe; one
    /// forced rollback restarts the cheapest participant and the rest
    /// drain.
    fn break_stall(&self, timeout: Duration) {
        let mut g = self.gate.lock().expect("gate poisoned");
        if g.last_commit.elapsed() < timeout {
            return;
        }
        let victim = g
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SlotState::Running)
            .min_by_key(|(_, s)| s.records.len())
            .map(|(i, _)| TxnId(i as u32));
        if std::env::var_os("MLA_SERVE_DEBUG_STALL").is_some() {
            let g = &mut *g;
            let mut lines = Vec::new();
            for (i, slot) in g.slots.iter().enumerate() {
                if slot.state == SlotState::Committed && slot.restarts == 0 {
                    continue;
                }
                lines.push(format!(
                    "  t{i}: {:?} seq={:?} records={:?} restarts={} sealed={}",
                    slot.state,
                    slot.instance.as_ref().map(TxnInstance::seq),
                    slot.records,
                    slot.restarts,
                    slot.sealed,
                ));
            }
            let running: Vec<usize> = g
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.state == SlotState::Running)
                .map(|(i, _)| i)
                .collect();
            let mut decisions: Vec<String> = Vec::new();
            for i in running {
                let Gate {
                    sched,
                    nest,
                    slots,
                    history,
                    ..
                } = &mut *g;
                let view = GateView {
                    nest,
                    slots,
                    history,
                };
                decisions.push(format!(
                    "  t{i} -> {:?}",
                    sched.decide(TxnId(i as u32), &view)
                ));
            }
            eprintln!(
                "STALL @ commits={} retries={:?}\n{}\ndecisions:\n{}",
                g.commits,
                g.retries,
                lines.join("\n"),
                decisions.join("\n")
            );
        }
        if let Some(v) = victim {
            self.cascade_abort(&mut g, &[v], v);
            g.stall_breaks += 1;
        }
        // Restart the clock either way: one stall, one break.
        g.last_commit = Instant::now();
    }

    /// One snapshot-stability probe: pin a ticket, read every entity at
    /// it twice with GC running in between, and require identical values
    /// unless an undo cascade intervened (uncommitted data is visible by
    /// design, so aborts legitimately change history — GC never may).
    fn snapshot_probe(&self, entities: &[EntityId]) {
        let (pin, epoch_before) = {
            let g = self.gate.lock().expect("gate poisoned");
            // Always exact: every fold keeps `base_ticket < frontier ≤
            // next_ticket`, so the newest already-drawn ticket reads
            // correctly no matter how much GC has folded — and strictly
            // below `next_ticket`, no later install can land at it.
            let t = g.next_ticket - 1;
            (self.epochs.pin(t), g.undo_epoch)
        };
        let at = pin.ticket();
        let first: Vec<Value> = entities.iter().map(|&e| self.mvcc.read_at(e, at)).collect();
        std::thread::yield_now();
        let second: Vec<Value> = entities.iter().map(|&e| self.mvcc.read_at(e, at)).collect();
        let epoch_after = self.gate.lock().expect("gate poisoned").undo_epoch;
        drop(pin);
        self.snapshot_checks.fetch_add(1, Ordering::Relaxed);
        if epoch_before == epoch_after && first != second {
            self.snapshot_violations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Worker main loop: drain the retry queue first, then round-robin this
/// worker's sessions, one step attempt each.
fn worker_loop(service: &Service, sessions: &[Vec<TxnId>], total_txns: u64) {
    // Per-session cursor into its transaction stream, plus a backoff
    // horizon: a session whose transaction was rolled back sits out for
    // an exponentially growing interval, so abort storms drain instead
    // of re-colliding at full speed.
    let mut cursor: Vec<usize> = vec![0; sessions.len()];
    let mut resume_at: Vec<Option<Instant>> = vec![None; sessions.len()];
    let mut strikes: Vec<u32> = vec![0; sessions.len()];
    while !service.shutdown.load(Ordering::Acquire) {
        let mut progressed = false;

        // Cascade-undone commits first: their sessions already moved on.
        let retry = service
            .gate
            .lock()
            .expect("gate poisoned")
            .retries
            .pop_front();
        if let Some(t) = retry {
            match service.step_once(t) {
                Attempt::Committed | Attempt::Done => {}
                // Not finished: requeue so any worker can keep driving it.
                _ => service
                    .gate
                    .lock()
                    .expect("gate poisoned")
                    .retries
                    .push_back(t),
            }
            progressed = true;
        }

        for (s, stream) in sessions.iter().enumerate() {
            // Skip transactions that already committed (possibly driven
            // by the retry queue).
            while cursor[s] < stream.len() {
                let t = stream[cursor[s]];
                let committed = {
                    let g = service.gate.lock().expect("gate poisoned");
                    g.slots[t.index()].state == SlotState::Committed
                };
                if committed {
                    cursor[s] += 1;
                } else {
                    break;
                }
            }
            if cursor[s] >= stream.len() {
                continue;
            }
            if resume_at[s].is_some_and(|at| Instant::now() < at) {
                continue;
            }
            resume_at[s] = None;
            progressed = true;
            let t = stream[cursor[s]];
            match service.step_once(t) {
                Attempt::Committed => {
                    cursor[s] += 1;
                    strikes[s] = 0;
                    let g = service.gate.lock().expect("gate poisoned");
                    if g.commits == total_txns && g.retries.is_empty() {
                        drop(g);
                        service.shutdown.store(true, Ordering::Release);
                        return;
                    }
                }
                Attempt::Progressed | Attempt::Done => strikes[s] = 0,
                Attempt::Deferred | Attempt::Aborted => {
                    strikes[s] = (strikes[s] + 1).min(7);
                    let backoff = Duration::from_micros(50 << strikes[s]);
                    resume_at[s] = Some(Instant::now() + backoff);
                }
            }
        }

        if !progressed {
            // All own sessions drained: stay alive for retry-queue work
            // until the drain completes, and close the shutdown race
            // where the final commit lands on another worker's retry
            // drive.
            let g = service.gate.lock().expect("gate poisoned");
            if g.commits == total_txns && g.retries.is_empty() {
                drop(g);
                service.shutdown.store(true, Ordering::Release);
                return;
            }
            drop(g);
            std::thread::yield_now();
        }
    }
}

/// Runs `load` to completion under `config` and reports.
pub fn run(load: &ServeLoad, config: &ServeConfig) -> ServeReport {
    let workload = &load.workload;
    let txn_count = workload.txn_count();
    let sessions = load.session_txns.len();
    let workers = config.workers.max(1).min(sessions.max(1));
    let spec = workload.spec();
    let nest = workload.nest.clone();

    let cert_started = Instant::now();
    let cert = if config.certified {
        load.certify()
    } else {
        None
    };
    let cert_wall = cert_started.elapsed();
    let certified = cert.is_some();
    let sched = match config.sched {
        SchedKind::Detect => {
            let mut s =
                MlaDetect::new(spec, mla_cc::VictimPolicy::FewestSteps).with_shards(config.shards);
            if let Some(c) = cert.clone() {
                s = s.with_static_cert(c);
            }
            Sched::Detect(s)
        }
        SchedKind::Prevent => {
            let mut s = MlaPrevent::new(txn_count, spec, mla_cc::VictimPolicy::FewestSteps)
                .with_shards(config.shards)
                .with_wait_shards(config.wait_shards);
            if let Some(c) = cert.clone() {
                s = s.with_static_cert(c);
            }
            Sched::Prevent(s)
        }
    };
    let sched_name = match config.sched {
        SchedKind::Detect => "mla-detect",
        SchedKind::Prevent => "mla-prevent",
    };

    let service = Service {
        gate: Mutex::new(Gate {
            nest,
            sched,
            slots: (0..txn_count).map(|_| Slot::new()).collect(),
            history: Vec::new(),
            next_ticket: 1,
            retries: VecDeque::new(),
            commits: 0,
            aborts: 0,
            cascade_undone_commits: 0,
            defers: 0,
            undo_epoch: 0,
            last_commit: Instant::now(),
            stall_breaks: 0,
            latencies_us: Vec::with_capacity(txn_count),
        }),
        latches: LatchTree::new(),
        mvcc: MvccStore::new(config.store_shards, workload.initial.iter().copied()),
        epochs: EpochRegistry::new(config.snapshot_readers + 2),
        profiles: workload.profiles(),
        shutdown: AtomicBool::new(false),
        gc_folded: AtomicU64::new(0),
        gc_passes: AtomicU64::new(0),
        snapshot_checks: AtomicU64::new(0),
        snapshot_violations: AtomicU64::new(0),
    };

    // The entity universe (snapshot probes scan it).
    let mut entities: Vec<EntityId> = service
        .profiles
        .iter()
        .flat_map(|p| p.footprint().iter().copied())
        .chain(workload.initial.iter().map(|&(e, _)| e))
        .collect();
    entities.sort_unstable_by_key(|e| e.0);
    entities.dedup();

    let started = Instant::now();
    let deadline = config.deadline;
    let clean = std::thread::scope(|scope| {
        for w in 0..workers {
            let service = &service;
            let session_slice: Vec<Vec<TxnId>> = load
                .session_txns
                .iter()
                .enumerate()
                .filter(|(s, _)| s % workers == w)
                .map(|(_, v)| v.clone())
                .collect();
            scope.spawn(move || worker_loop(service, &session_slice, txn_count as u64));
        }
        if let Some(interval) = config.gc_interval {
            let service = &service;
            scope.spawn(move || {
                while !service.shutdown.load(Ordering::Acquire) {
                    service.gc_pass();
                    std::thread::sleep(interval);
                }
            });
        }
        for _ in 0..config.snapshot_readers {
            let service = &service;
            let entities = entities.clone();
            scope.spawn(move || {
                while !service.shutdown.load(Ordering::Acquire) {
                    service.snapshot_probe(&entities);
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        // Deadline watchdog: force shutdown so the scope can join, and
        // break cross-session deadlocks the schedulers cannot see.
        let service = &service;
        let mut clean = true;
        let mut ticks = 0u32;
        while !service.shutdown.load(Ordering::Acquire) {
            if started.elapsed() > deadline {
                clean = false;
                service.shutdown.store(true, Ordering::Release);
                break;
            }
            ticks = ticks.wrapping_add(1);
            if ticks.is_multiple_of(32) {
                service.break_stall(config.stall_timeout);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        clean
    });
    let wall = started.elapsed();

    let mut g = service.gate.lock().expect("gate poisoned");
    let mut latencies = std::mem::take(&mut g.latencies_us);
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[idx.clamp(1, latencies.len()) - 1]
    };
    let (latch_acquisitions, latch_waits) = service.latches.stats();
    ServeReport {
        load: workload.name.clone(),
        sched: sched_name.to_string(),
        workers,
        sessions,
        committed: g.commits,
        aborts: g.aborts,
        commit_hazards: g.cascade_undone_commits,
        defers: g.defers,
        wall,
        cert_wall,
        certified,
        certified_skips: g.sched.certified_skips(),
        certified_skips_per_universe: g.sched.certified_skips_per_universe(),
        cert_re_arms: g.sched.cert_re_arms(),
        throughput: g.commits as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        latch_acquisitions,
        latch_waits,
        gc_folded: service.gc_folded.load(Ordering::Relaxed),
        gc_passes: service.gc_passes.load(Ordering::Relaxed),
        snapshot_checks: service.snapshot_checks.load(Ordering::Relaxed),
        snapshot_violations: service.snapshot_violations.load(Ordering::Relaxed),
        stall_breaks: g.stall_breaks,
        live_versions: service.mvcc.version_count(),
        clean,
        history: std::mem::take(&mut g.history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{contended_load, partitioned_load};

    fn quick(sched: SchedKind, load: &ServeLoad, workers: usize) -> ServeReport {
        let config = ServeConfig {
            sched,
            workers,
            deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        run(load, &config)
    }

    #[test]
    fn partitioned_drains_cleanly_under_both_schedulers() {
        for sched in [SchedKind::Detect, SchedKind::Prevent] {
            let load = partitioned_load(8, 6);
            let report = quick(sched, &load, 4);
            assert!(report.clean, "{}", report.render());
            assert_eq!(report.committed, 48, "{}", report.render());
            assert_eq!(report.snapshot_violations, 0, "{}", report.render());
            assert_eq!(report.history.len(), 48 * 2);
        }
    }

    #[test]
    fn contended_drains_and_conserves_money() {
        let load = contended_load(6, 8, 4, 4);
        let report = quick(SchedKind::Prevent, &load, 3);
        assert!(report.clean, "{}", report.render());
        assert_eq!(report.committed, 48, "{}", report.render());
        // Replay the committed history: the final value of each account
        // is the last write in ticket order. Every step is an atomic
        // read-modify-write, so a drained run conserves the total.
        let entities = (0..4).map(EntityId);
        let mut finals = std::collections::HashMap::new();
        for s in &report.history {
            finals.insert(s.entity, s.wrote);
        }
        let total: Value = entities.map(|e| *finals.get(&e).unwrap_or(&100)).sum();
        assert_eq!(total, load.initial_total, "{}", report.render());
    }

    #[test]
    fn detect_survives_contention_with_rollbacks() {
        let load = contended_load(4, 6, 3, 3);
        let report = quick(SchedKind::Detect, &load, 2);
        assert!(report.clean, "{}", report.render());
        assert_eq!(report.committed, 24, "{}", report.render());
    }

    #[test]
    fn certified_partitioned_run_gc_reclaims_versions() {
        let load = partitioned_load(4, 32);
        let config = ServeConfig {
            sched: SchedKind::Prevent,
            workers: 4,
            certified: true,
            gc_interval: Some(Duration::from_micros(100)),
            deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let report = run(&load, &config);
        assert!(report.clean, "{}", report.render());
        assert_eq!(report.committed, 128, "{}", report.render());
        assert_eq!(report.aborts, 0, "{}", report.render());
        assert_eq!(report.snapshot_violations, 0, "{}", report.render());
        // Every grant rode the certificate fast path, and the report
        // splits them per universe.
        assert!(report.certified_skips > 0, "{}", report.render());
        assert_eq!(
            report.certified_skips_per_universe.iter().sum::<u64>(),
            report.certified_skips,
            "{}",
            report.render()
        );
        assert!(report.render().contains("fast-path grants"));
    }

    #[test]
    fn history_is_ticket_ordered_and_seq_contiguous() {
        let load = contended_load(4, 5, 3, 0);
        let report = quick(SchedKind::Prevent, &load, 2);
        assert!(report.clean);
        // Per-transaction seqs are 0..n in history order — Execution
        // accepts it.
        assert!(mla_model::Execution::new(report.history.clone()).is_ok());
    }
}
