//! Service workloads: session-structured transaction streams.
//!
//! A [`ServeLoad`] is a plain [`Workload`] (nest, programs, breakpoints,
//! initial values) plus a *session assignment*: each simulated client
//! session owns an ordered stream of transaction ids it will execute, one
//! after another, against the live store. Two shapes cover the service's
//! test and bench needs:
//!
//! * [`partitioned_load`] — each session owns a private entity range and
//!   runs forward-chain transactions inside it (the certifiable shape the
//!   A5 workload established): `mla-lint` issues a [`StaticCert`] and the
//!   schedulers ride the certified fast path, which is what the
//!   100k-commit throughput row measures.
//! * [`contended_load`] — every session draws transfers over one shared
//!   account ring, with mid-transfer breakpoints and a π(2) class per
//!   ring neighbourhood, plus atomic audits; admission actually defers,
//!   waits, and occasionally aborts, which is what the smoke and
//!   differential tests exercise.

use std::sync::Arc;

use mla_core::cert::StaticCert;
use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::{EntityId, TxnId, Value};
use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};
use mla_workload::Workload;

/// A workload plus its session assignment.
pub struct ServeLoad {
    /// The declared transactions (profiles, spec, and nest derive from
    /// it).
    pub workload: Workload,
    /// Per-session transaction streams, executed in order.
    pub session_txns: Vec<Vec<TxnId>>,
    /// Sum of all initial entity values (conservation audits).
    pub initial_total: Value,
}

impl ServeLoad {
    /// Total transactions across sessions.
    pub fn txn_count(&self) -> usize {
        self.workload.txn_count()
    }

    /// Tries to statically certify the workload with `mla-lint`.
    pub fn certify(&self) -> Option<StaticCert> {
        mla_lint::certify_workload(&self.workload).cert
    }
}

/// Each session owns a private entity range: transaction `i` of session
/// `s` adds 1 to the session's shared entity, then to a private one —
/// the forward-chain shape that certifies statically. One π(2) class per
/// session (k = 3), so cross-session atomicity is never at stake and
/// in-session weaving is licensed by the mid-transaction breakpoint.
pub fn partitioned_load(sessions: usize, txns_per_session: usize) -> ServeLoad {
    assert!(sessions >= 1 && txns_per_session >= 1);
    let k = 3;
    let shared = |s: usize| EntityId((s * (txns_per_session + 1)) as u32);
    let private = |s: usize, i: usize| EntityId((s * (txns_per_session + 1) + 1 + i) as u32);

    let mut programs: Vec<Arc<dyn mla_model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut session_txns: Vec<Vec<TxnId>> = vec![Vec::new(); sessions];
    let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
    for (s, txns) in session_txns.iter_mut().enumerate() {
        for i in 0..txns_per_session {
            let id = TxnId((s * txns_per_session + i) as u32);
            programs.push(Arc::new(ScriptProgram::new(vec![
                ScriptOp::Add(shared(s), 1),
                ScriptOp::Add(private(s, i), 1),
            ])));
            breakpoints.push(bp.clone());
            paths.push(vec![s as u32]);
            txns.push(id);
        }
    }
    let nest = Nest::new(k, paths).expect("one non-empty path per transaction");
    ServeLoad {
        workload: Workload {
            name: format!("serve-partitioned-{sessions}x{txns_per_session}"),
            nest,
            programs,
            breakpoints,
            initial: Vec::new(),
            arrivals: vec![0; sessions * txns_per_session],
        },
        session_txns,
        initial_total: 0,
    }
}

/// All sessions transfer over one shared ring of `accounts` accounts
/// (each starting at 100): transaction `i` of session `s` moves one unit
/// from account `(s + i) % accounts` to the next, with a mid-transfer
/// phase breakpoint. Every `audit_every`-th transaction of a session is
/// instead an atomic audit accumulating the whole ring (0 disables
/// audits). Transfers share one π(2) class; audits sit in their own, so
/// they demand atomicity against everything — the §6 conflict shape that
/// makes admission actually defer and abort.
pub fn contended_load(
    sessions: usize,
    txns_per_session: usize,
    accounts: usize,
    audit_every: usize,
) -> ServeLoad {
    assert!(sessions >= 1 && txns_per_session >= 1 && accounts >= 2);
    let k = 3;
    let e = |a: usize| EntityId(a as u32);
    let mut programs: Vec<Arc<dyn mla_model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut session_txns: Vec<Vec<TxnId>> = vec![Vec::new(); sessions];
    let transfer_bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
    let audit_bp: Arc<dyn RuntimeBreakpoints> = Arc::new(NoBreakpoints { k });
    for (s, txns) in session_txns.iter_mut().enumerate() {
        for i in 0..txns_per_session {
            let id = TxnId((s * txns_per_session + i) as u32);
            // Stagger the audit cadence by session: synchronized atomic
            // audits would all collide, deadlock, and cascade in lockstep.
            let is_audit = audit_every != 0 && (i + s) % audit_every == audit_every - 1;
            if is_audit {
                programs.push(Arc::new(ScriptProgram::new(
                    (0..accounts).map(|a| ScriptOp::Accumulate(e(a))).collect(),
                )));
                breakpoints.push(audit_bp.clone());
                paths.push(vec![1]);
            } else {
                let from = (s + i) % accounts;
                let to = (from + 1) % accounts;
                programs.push(Arc::new(ScriptProgram::new(vec![
                    ScriptOp::Add(e(from), -1),
                    ScriptOp::Add(e(to), 1),
                ])));
                breakpoints.push(transfer_bp.clone());
                paths.push(vec![0]);
            }
            txns.push(id);
        }
    }
    let nest = Nest::new(k, paths).expect("one non-empty path per transaction");
    let initial: Vec<(EntityId, Value)> = (0..accounts).map(|a| (e(a), 100)).collect();
    let initial_total = 100 * accounts as Value;
    ServeLoad {
        workload: Workload {
            name: format!("serve-contended-{sessions}x{txns_per_session}@{accounts}"),
            nest,
            programs,
            breakpoints,
            initial,
            arrivals: vec![0; sessions * txns_per_session],
        },
        session_txns,
        initial_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_load_certifies() {
        let load = partitioned_load(4, 8);
        assert_eq!(load.txn_count(), 32);
        assert_eq!(load.session_txns.len(), 4);
        assert!(
            load.certify().is_some(),
            "forward-chain sessions must earn a static certificate"
        );
        // Footprints of different sessions are disjoint.
        let profiles = load.workload.profiles();
        let fp = |t: usize| profiles[t].footprint().to_vec();
        assert!(fp(0).iter().all(|e| !fp(8).contains(e)));
    }

    #[test]
    fn contended_load_conserves_and_does_not_certify() {
        let load = contended_load(4, 6, 4, 3);
        assert_eq!(load.txn_count(), 24);
        assert_eq!(load.initial_total, 400);
        assert!(
            load.certify().is_none(),
            "opposing transfers with atomic audits must be denied"
        );
    }
}
