//! Auditing service histories against the theory.
//!
//! A drained run's history is a ticket-ordered [`Execution`] of the
//! committed transactions; Theorem 2's offline decision procedure
//! applies to it directly. For long runs, auditing the whole history is
//! quadratic-ish in window size, so the audit also supports *windowed
//! sampling*: slice the history, project each slice onto the
//! transactions **fully contained** in it, and check each projection.
//!
//! Projection is sound: the coherent closure of a projected suborder is
//! contained in the projection of the closure (dropping whole
//! transactions removes order pairs and conflict edges, never adds
//! them), so a correctable full history projects to correctable windows
//! — a window violation therefore always implicates the scheduler. It is
//! deliberately *not* complete (a cross-window cycle can escape
//! sampling); the tier-1 differential test audits full histories, the
//! smoke job samples.

use std::collections::HashSet;

use mla_core::nest::Nest;
use mla_core::theorem::is_correctable;
use mla_model::{Execution, Step, TxnId};
use mla_txn::RuntimeSpec;

/// Result of an audit pass.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Windows (or the single full pass) checked.
    pub windows: usize,
    /// Windows whose projection failed Theorem 2.
    pub violations: usize,
    /// Steps covered by at least one checked projection.
    pub steps_covered: usize,
}

impl AuditReport {
    /// Whether every checked window was correctable.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// Audits the full history in one Theorem 2 pass.
pub fn audit_full(history: &[Step], nest: &Nest, spec: &RuntimeSpec) -> AuditReport {
    let exec = Execution::new(history.to_vec()).expect("service histories are seq-contiguous");
    let ok = is_correctable(&exec, nest, spec).expect("history matches nest and spec");
    AuditReport {
        windows: 1,
        violations: usize::from(!ok),
        steps_covered: history.len(),
    }
}

/// Audits `history` in windows of `window` steps (the tail partial
/// window included), each projected onto its fully-contained
/// transactions. Falls back to a single full pass when the history fits
/// in one window.
pub fn audit_windowed(
    history: &[Step],
    nest: &Nest,
    spec: &RuntimeSpec,
    window: usize,
) -> AuditReport {
    assert!(window > 0, "window must be positive");
    if history.len() <= window {
        return audit_full(history, nest, spec);
    }
    // Span of each transaction in the (single-incarnation) committed
    // history: fully contained in a chunk iff its whole span is.
    let mut spans: std::collections::HashMap<TxnId, (usize, usize)> =
        std::collections::HashMap::new();
    for (i, s) in history.iter().enumerate() {
        let span = spans.entry(s.txn).or_insert((i, i));
        span.1 = i;
    }
    let mut windows = 0;
    let mut violations = 0;
    let mut steps_covered = 0;
    for (c, chunk) in history.chunks(window).enumerate() {
        let lo = c * window;
        let hi = lo + chunk.len();
        let contained: HashSet<TxnId> = chunk
            .iter()
            .map(|s| s.txn)
            .filter(|t| {
                let &(first, last) = &spans[t];
                first >= lo && last < hi
            })
            .collect();
        let projected: Vec<Step> = chunk
            .iter()
            .filter(|s| contained.contains(&s.txn))
            .copied()
            .collect();
        if projected.is_empty() {
            continue;
        }
        steps_covered += projected.len();
        let exec = Execution::new(projected).expect("full transactions are seq-contiguous");
        let ok = is_correctable(&exec, nest, spec).expect("history matches nest and spec");
        windows += 1;
        violations += usize::from(!ok);
    }
    AuditReport {
        windows,
        violations,
        steps_covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::EntityId;
    use mla_txn::{NoBreakpoints, RuntimeSpec};
    use std::sync::Arc;

    fn step(t: u32, seq: u32, e: u32) -> Step {
        Step {
            txn: TxnId(t),
            seq,
            entity: EntityId(e),
            observed: 0,
            wrote: 0,
        }
    }

    fn atomic_spec(n: usize) -> RuntimeSpec {
        let mut spec = RuntimeSpec::new(2);
        for t in 0..n {
            spec.insert(TxnId(t as u32), Arc::new(NoBreakpoints { k: 2 }));
        }
        spec
    }

    #[test]
    fn serial_history_audits_clean() {
        let history = vec![step(0, 0, 0), step(0, 1, 1), step(1, 0, 0), step(1, 1, 1)];
        let nest = Nest::flat(2);
        let spec = atomic_spec(2);
        assert!(audit_full(&history, &nest, &spec).passed());
        let windowed = audit_windowed(&history, &nest, &spec, 2);
        assert!(windowed.passed());
        assert_eq!(windowed.windows, 2);
        assert_eq!(windowed.steps_covered, 4);
    }

    #[test]
    fn interleaved_atomic_pair_fails_the_audit() {
        // t0 and t1 interleave on two entities with no breakpoints under
        // a flat nest: the textbook non-serializable weave.
        let history = vec![step(0, 0, 0), step(1, 0, 0), step(1, 1, 1), step(0, 1, 1)];
        let nest = Nest::flat(2);
        let spec = atomic_spec(2);
        assert!(!audit_full(&history, &nest, &spec).passed());
    }

    #[test]
    fn windowed_audit_skips_straddling_transactions() {
        // t1's steps straddle the window boundary; each window projects
        // onto its fully-contained transactions only.
        let history = vec![
            step(0, 0, 0),
            step(0, 1, 1),
            step(1, 0, 2),
            step(1, 1, 3),
            step(2, 0, 4),
            step(2, 1, 5),
        ];
        let nest = Nest::flat(3);
        let spec = atomic_spec(3);
        let report = audit_windowed(&history, &nest, &spec, 3);
        assert!(report.passed());
        // t1 straddles chunks [0..3) and [3..6): only t0 and t2 covered.
        assert_eq!(report.steps_covered, 4);
    }
}
