//! The `mla-serve` binary: boot the service on a generated workload,
//! drain it, audit the history, and report.

use std::time::Duration;

use mla_serve::{audit_full, audit_windowed, contended_load, partitioned_load};
use mla_serve::{run, SchedKind, ServeConfig};

const USAGE: &str = "mla-serve: concurrent transaction service demo

USAGE: mla-serve [OPTIONS]

  --load partitioned|contended   workload shape        [contended]
  --sessions N                   client sessions       [64]
  --txns N                       txns per session      [32]
  --accounts N                   shared accounts (contended) [16]
  --audit-every N                audit txn cadence, 0=off (contended) [8]
  --sched detect|prevent         admission scheduler   [prevent]
  --workers N                    worker threads        [4]
  --shards N                     closure-engine shards [1]
  --wait-shards N                wait-graph partitions [1]
  --certified                    attach the static certificate if earned
  --no-gc                        disable the epoch GC thread
  --deadline-secs N              liveness backstop     [60]
  --audit-window N               oracle window, 0=full history [0]
  --dump-history PATH            write the drained history in
                                 mla-history v1 (mla-check) format
  --quiet                        suppress the report block
";

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bad or missing value for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() {
    let mut load_kind = "contended".to_string();
    let mut sessions = 64usize;
    let mut txns = 32usize;
    let mut accounts = 16usize;
    let mut audit_every = 8usize;
    let mut config = ServeConfig::default();
    let mut audit_window = 0usize;
    let mut dump_history: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--load" => load_kind = parse_or_die(&a, args.next()),
            "--sessions" => sessions = parse_or_die(&a, args.next()),
            "--txns" => txns = parse_or_die(&a, args.next()),
            "--accounts" => accounts = parse_or_die(&a, args.next()),
            "--audit-every" => audit_every = parse_or_die(&a, args.next()),
            "--sched" => {
                config.sched = match args.next().as_deref() {
                    Some("detect") => SchedKind::Detect,
                    Some("prevent") => SchedKind::Prevent,
                    other => {
                        eprintln!("unknown scheduler {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--workers" => config.workers = parse_or_die(&a, args.next()),
            "--shards" => config.shards = parse_or_die(&a, args.next()),
            "--wait-shards" => config.wait_shards = parse_or_die(&a, args.next()),
            "--certified" => config.certified = true,
            "--no-gc" => config.gc_interval = None,
            "--deadline-secs" => {
                config.deadline = Duration::from_secs(parse_or_die(&a, args.next()))
            }
            "--audit-window" => audit_window = parse_or_die(&a, args.next()),
            "--dump-history" => dump_history = Some(parse_or_die(&a, args.next())),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let gen_started = std::time::Instant::now();
    let load = match load_kind.as_str() {
        "partitioned" => partitioned_load(sessions, txns),
        "contended" => contended_load(sessions, txns, accounts, audit_every),
        other => {
            eprintln!("unknown load {other}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let gen_wall = gen_started.elapsed();

    let report = run(&load, &config);
    if !quiet {
        println!("{}", report.render());
    }

    let nest = &load.workload.nest;
    let spec = load.workload.spec();
    let audit_started = std::time::Instant::now();
    let audit = if audit_window == 0 {
        audit_full(&report.history, nest, &spec)
    } else {
        audit_windowed(&report.history, nest, &spec, audit_window)
    };
    println!(
        "oracle      {} windows audited, {} violations ({} steps)",
        audit.windows, audit.violations, audit.steps_covered
    );
    if !quiet {
        println!(
            "phases      generate {gen_wall:.3?}, certify {:.3?}, drain {:.3?}, audit {:.3?}",
            report.cert_wall,
            report.wall,
            audit_started.elapsed()
        );
    }

    if let Some(path) = dump_history {
        let exec = mla_model::Execution::new(report.history.clone())
            .expect("service histories are seq-contiguous");
        let h = mla_check::History::from_execution(&exec, nest, &spec)
            .expect("service history matches its nest and spec");
        if let Err(e) = std::fs::write(&path, mla_check::format_history(&h)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("history     wrote {} steps to {path}", exec.len());
    }

    if !report.clean {
        eprintln!("DEADLINE HIT: drain incomplete");
        std::process::exit(1);
    }
    if report.snapshot_violations > 0 {
        eprintln!("SNAPSHOT VIOLATIONS: {}", report.snapshot_violations);
        std::process::exit(1);
    }
    if !audit.passed() {
        eprintln!("ORACLE VIOLATIONS: history is not correctable");
        std::process::exit(1);
    }
}
