//! `mla-serve`: a concurrent transaction service with the §6 multilevel
//! atomicity schedulers gating admission.
//!
//! Where `mla-sim` *simulates* concurrency (one thread, a virtual clock,
//! migrating transactions), this crate *is* concurrent: OS worker
//! threads drive simulated client sessions against timestamped MVCC
//! storage ([`mla_storage::MvccStore`]), every step admitted by
//! [`MlaDetect`](mla_cc::MlaDetect) or
//! [`MlaPrevent`](mla_cc::MlaPrevent) through the same
//! [`AdmissionView`](mla_cc::AdmissionView) surface the simulator uses —
//! one scheduler core, two hosts. Committed versions are reclaimed by
//! epoch-based GC, and every drained history feeds back through Theorem
//! 2's offline decision procedure ([`audit`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod service;
pub mod workload;

pub use audit::{audit_full, audit_windowed, AuditReport};
pub use service::{run, SchedKind, ServeConfig, ServeReport};
pub use workload::{contended_load, partitioned_load, ServeLoad};
